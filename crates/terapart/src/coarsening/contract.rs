//! Cluster contraction: buffered (baseline) and one-pass (TeraPart) algorithms
//! (paper §IV-B).
//!
//! Given a clustering, contraction builds the coarse graph whose vertices are the
//! clusters and whose edge weights aggregate the fine edge weights between clusters.
//!
//! * [`ContractionAlgorithm::Buffered`] aggregates the coarse neighbourhoods into
//!   per-cluster buffers, computes the degree prefix sum, and then copies the buffers
//!   into the CSR arrays — the coarse graph is held in memory twice at the peak.
//! * [`ContractionAlgorithm::OnePass`] appends each coarse neighbourhood directly to the
//!   (over-reserved) coarse edge array as soon as it has been aggregated. The write
//!   position and the new coarse vertex ID are obtained from a single atomic transaction
//!   on the [`DualCounter`]; vertex IDs are assigned in commit order, so the
//!   neighbourhoods of consecutive coarse IDs are consecutive in the edge array and no
//!   shuffling is needed. Endpoints are remapped from old cluster labels to new coarse
//!   IDs at the very end.
//!
//! Both algorithms use the two-phase aggregation idea: clusters whose coarse
//! neighbourhood exceeds the bump threshold are deferred to a sequential second phase
//! that may use an `O(n)` rating map.

use std::sync::atomic::{AtomicU32, AtomicU64, Ordering};

use graph::csr::CsrGraph;
use graph::traits::Graph;
use graph::{EdgeId, EdgeWeight, NodeId, NodeWeight};
use memtrack::MemoryScope;
use rayon::prelude::*;

use crate::context::ContractionAlgorithm;
use crate::dual_counter::DualCounter;
use crate::ClusterId;

use super::lp_clustering::Clustering;
use super::rating_map::{FixedCapacityHashMap, SparseRatingMap};

/// Result of contracting a clustering.
#[derive(Debug, Clone)]
pub struct ContractionResult {
    /// The coarse graph. Coarse vertex weights are the summed weights of the cluster
    /// members; coarse edge weights aggregate all fine edges between the two clusters.
    pub coarse: CsrGraph,
    /// `mapping[u]` is the coarse vertex that fine vertex `u` was contracted into.
    pub mapping: Vec<NodeId>,
}

/// Number of fine half-edges batched per dual-counter transaction in one-pass
/// contraction (reduces contention on the atomic counter, paper §IV-B2).
const BATCH_EDGE_CAPACITY: usize = 4096;

/// Contracts `clustering` on `graph` using the selected algorithm.
pub fn contract(
    graph: &impl Graph,
    clustering: &Clustering,
    algorithm: ContractionAlgorithm,
    bump_threshold: usize,
) -> ContractionResult {
    match algorithm {
        ContractionAlgorithm::Buffered => contract_buffered(graph, clustering),
        ContractionAlgorithm::OnePass => contract_one_pass(graph, clustering, bump_threshold),
    }
}

/// Groups the vertices of each cluster label: returns `(leaders, members)` where
/// `members[i]` lists the fine vertices labelled `leaders[i]`.
fn cluster_buckets(graph: &impl Graph, clustering: &Clustering) -> (Vec<ClusterId>, Vec<Vec<NodeId>>) {
    let n = graph.n();
    let mut bucket_of_label: Vec<u32> = vec![u32::MAX; n];
    let mut leaders: Vec<ClusterId> = Vec::with_capacity(clustering.num_clusters);
    let mut members: Vec<Vec<NodeId>> = Vec::with_capacity(clustering.num_clusters);
    for u in 0..n as NodeId {
        let label = clustering.label[u as usize];
        let bucket = bucket_of_label[label as usize];
        if bucket == u32::MAX {
            bucket_of_label[label as usize] = leaders.len() as u32;
            leaders.push(label);
            members.push(vec![u]);
        } else {
            members[bucket as usize].push(u);
        }
    }
    (leaders, members)
}

/// Baseline contraction: aggregate into per-cluster buffers, then copy into CSR arrays.
fn contract_buffered(graph: &impl Graph, clustering: &Clustering) -> ContractionResult {
    let n = graph.n();
    if n == 0 {
        return ContractionResult { coarse: graph::CsrGraphBuilder::new(0).build(), mapping: Vec::new() };
    }
    let (leaders, members) = cluster_buckets(graph, clustering);
    let n_coarse = leaders.len();
    // Old label -> coarse vertex ID (in bucket order).
    let mut coarse_of_label: Vec<NodeId> = vec![NodeId::MAX; n];
    for (coarse, &leader) in leaders.iter().enumerate() {
        coarse_of_label[leader as usize] = coarse as NodeId;
    }
    let mapping: Vec<NodeId> = (0..n)
        .map(|u| coarse_of_label[clustering.label[u] as usize])
        .collect();

    // Aggregate each coarse neighbourhood into its own buffer (this is the transient
    // second copy of the coarse graph that one-pass contraction eliminates).
    let buffers: Vec<(NodeWeight, Vec<(NodeId, EdgeWeight)>)> = members
        .par_iter()
        .enumerate()
        .map(|(coarse, cluster)| {
            let mut ratings: std::collections::HashMap<NodeId, EdgeWeight> =
                std::collections::HashMap::new();
            let mut weight: NodeWeight = 0;
            for &u in cluster {
                weight += graph.node_weight(u);
                graph.for_each_neighbor(u, &mut |v, w| {
                    let target = mapping[v as usize];
                    if target != coarse as NodeId {
                        *ratings.entry(target).or_insert(0) += w;
                    }
                });
            }
            let mut edges: Vec<(NodeId, EdgeWeight)> = ratings.into_iter().collect();
            edges.sort_unstable_by_key(|&(v, _)| v);
            (weight, edges)
        })
        .collect();

    // Charge the transient buffers to the memory accounting: this is the extra copy of
    // the coarse graph that the paper's Figure 2 attributes to "Contraction".
    let buffer_bytes: usize = buffers
        .iter()
        .map(|(_, edges)| edges.len() * (std::mem::size_of::<NodeId>() + std::mem::size_of::<EdgeWeight>()))
        .sum();
    let _scope = MemoryScope::charge_global(buffer_bytes);

    // Prefix sum over degrees, then copy the buffers into the CSR arrays.
    let mut xadj: Vec<EdgeId> = Vec::with_capacity(n_coarse + 1);
    xadj.push(0);
    let mut acc: EdgeId = 0;
    for (_, edges) in &buffers {
        acc += edges.len() as EdgeId;
        xadj.push(acc);
    }
    let mut adjacency: Vec<NodeId> = Vec::with_capacity(acc as usize);
    let mut edge_weights: Vec<EdgeWeight> = Vec::with_capacity(acc as usize);
    let mut node_weights: Vec<NodeWeight> = Vec::with_capacity(n_coarse);
    for (weight, edges) in &buffers {
        node_weights.push(*weight);
        for &(v, w) in edges {
            adjacency.push(v);
            edge_weights.push(w);
        }
    }
    let coarse = CsrGraph::from_parts(xadj, adjacency, edge_weights, node_weights);
    ContractionResult { coarse, mapping }
}

/// One-pass contraction (paper §IV-B2).
fn contract_one_pass(
    graph: &impl Graph,
    clustering: &Clustering,
    bump_threshold: usize,
) -> ContractionResult {
    let n = graph.n();
    if n == 0 {
        return ContractionResult { coarse: graph::CsrGraphBuilder::new(0).build(), mapping: Vec::new() };
    }
    let (leaders, members) = cluster_buckets(graph, clustering);
    let upper_bound_edges = 2 * graph.m();

    // Over-reserved output arrays. Only the first 2m' entries will ever be written; the
    // memory-accounting model charges committed bytes through the scope below.
    let coarse_edges: Vec<AtomicU32> = {
        let mut v = Vec::with_capacity(upper_bound_edges);
        v.resize_with(upper_bound_edges, || AtomicU32::new(0));
        v
    };
    let coarse_edge_weights: Vec<AtomicU64> = {
        let mut v = Vec::with_capacity(upper_bound_edges);
        v.resize_with(upper_bound_edges, || AtomicU64::new(0));
        v
    };
    // Per coarse vertex (at most n of them): neighbourhood start, node weight.
    let starts: Vec<AtomicU64> = {
        let mut v = Vec::with_capacity(n);
        v.resize_with(n, || AtomicU64::new(0));
        v
    };
    let degrees: Vec<AtomicU32> = {
        let mut v = Vec::with_capacity(n);
        v.resize_with(n, || AtomicU32::new(0));
        v
    };
    let coarse_node_weights: Vec<AtomicU64> = {
        let mut v = Vec::with_capacity(n);
        v.resize_with(n, || AtomicU64::new(0));
        v
    };
    // Old cluster label -> new coarse vertex ID, filled as neighbourhoods are committed.
    let remap: Vec<AtomicU32> = {
        let mut v = Vec::with_capacity(n);
        v.resize_with(n, || AtomicU32::new(NodeId::MAX));
        v
    };
    let dual = DualCounter::new();

    // A buffered batch of aggregated coarse neighbourhoods awaiting a dual-counter
    // transaction.
    struct Batch {
        /// (old label, node weight, number of edges) per coarse vertex in the batch.
        vertices: Vec<(ClusterId, NodeWeight, u32)>,
        /// Concatenated (old target label, weight) pairs.
        edges: Vec<(ClusterId, EdgeWeight)>,
    }

    impl Batch {
        fn new() -> Self {
            Self { vertices: Vec::new(), edges: Vec::with_capacity(BATCH_EDGE_CAPACITY) }
        }
        fn is_empty(&self) -> bool {
            self.vertices.is_empty()
        }
    }

    let flush_batch = |batch: &mut Batch| {
        if batch.is_empty() {
            return;
        }
        let (d_prev, s_prev) = dual.fetch_add(batch.edges.len() as u64, batch.vertices.len() as u64);
        let mut edge_cursor = d_prev as usize;
        let mut offset_in_edges = 0usize;
        for (i, &(label, weight, len)) in batch.vertices.iter().enumerate() {
            let coarse_id = s_prev as usize + i;
            starts[coarse_id].store(edge_cursor as u64, Ordering::Relaxed);
            degrees[coarse_id].store(len, Ordering::Relaxed);
            coarse_node_weights[coarse_id].store(weight, Ordering::Relaxed);
            remap[label as usize].store(coarse_id as u32, Ordering::Relaxed);
            for &(target, w) in &batch.edges[offset_in_edges..offset_in_edges + len as usize] {
                coarse_edges[edge_cursor].store(target, Ordering::Relaxed);
                coarse_edge_weights[edge_cursor].store(w, Ordering::Relaxed);
                edge_cursor += 1;
            }
            offset_in_edges += len as usize;
        }
        batch.vertices.clear();
        batch.edges.clear();
    };

    // ---- First phase: clusters in parallel, fixed-capacity hash tables, batching. ----
    let cluster_indices: Vec<usize> = (0..leaders.len()).collect();
    let bumped: Vec<usize> = cluster_indices
        .par_chunks(64)
        .map(|chunk| {
            let mut table = FixedCapacityHashMap::new(bump_threshold);
            let mut batch = Batch::new();
            let mut bumped = Vec::new();
            for &idx in chunk {
                let label = leaders[idx];
                table.clear();
                let mut weight: NodeWeight = 0;
                let mut overflow = false;
                for &u in &members[idx] {
                    weight += graph.node_weight(u);
                    graph.for_each_neighbor(u, &mut |v, w| {
                        let target_label = clustering.label[v as usize];
                        if !overflow && target_label != label && !table.add(target_label, w) {
                            overflow = true;
                        }
                    });
                    if overflow {
                        break;
                    }
                }
                if overflow {
                    bumped.push(idx);
                    continue;
                }
                let len = table.len() as u32;
                if batch.edges.len() + len as usize > BATCH_EDGE_CAPACITY && !batch.is_empty() {
                    flush_batch(&mut batch);
                }
                batch.vertices.push((label, weight, len));
                batch.edges.extend(table.iter());
                if batch.edges.len() >= BATCH_EDGE_CAPACITY {
                    flush_batch(&mut batch);
                }
            }
            flush_batch(&mut batch);
            bumped
        })
        .reduce(Vec::new, |mut a, mut b| {
            a.append(&mut b);
            a
        });

    // ---- Second phase: bumped high-fanout clusters sequentially with a sparse map. ----
    if !bumped.is_empty() {
        let mut map = SparseRatingMap::new(n);
        let _scope = MemoryScope::charge_global(map.memory_bytes());
        for &idx in &bumped {
            let label = leaders[idx];
            map.clear();
            let mut weight: NodeWeight = 0;
            for &u in &members[idx] {
                weight += graph.node_weight(u);
                graph.for_each_neighbor(u, &mut |v, w| {
                    let target_label = clustering.label[v as usize];
                    if target_label != label {
                        map.add(target_label, w);
                    }
                });
            }
            let len = map.len();
            let (d_prev, s_prev) = dual.fetch_add(len as u64, 1);
            let coarse_id = s_prev as usize;
            starts[coarse_id].store(d_prev, Ordering::Relaxed);
            degrees[coarse_id].store(len as u32, Ordering::Relaxed);
            coarse_node_weights[coarse_id].store(weight, Ordering::Relaxed);
            remap[label as usize].store(coarse_id as u32, Ordering::Relaxed);
            for (i, (target, w)) in map.iter().enumerate() {
                coarse_edges[d_prev as usize + i].store(target, Ordering::Relaxed);
                coarse_edge_weights[d_prev as usize + i].store(w, Ordering::Relaxed);
            }
        }
    }

    let (total_edges, total_vertices) = dual.load();
    let n_coarse = total_vertices as usize;
    let m_half = total_edges as usize;
    debug_assert_eq!(n_coarse, leaders.len());

    // Charge the committed portion of the over-reserved arrays (the paper's point: only
    // 2m' entries are physically backed).
    let committed_bytes = m_half * (std::mem::size_of::<NodeId>() + std::mem::size_of::<EdgeWeight>())
        + n_coarse * (std::mem::size_of::<u64>() + std::mem::size_of::<u32>() + std::mem::size_of::<u64>());
    let _scope = MemoryScope::charge_global(committed_bytes);

    // ---- Assemble the CSR arrays, remapping old labels to coarse IDs. ----
    let mut xadj: Vec<EdgeId> = Vec::with_capacity(n_coarse + 1);
    for coarse_id in 0..n_coarse {
        xadj.push(starts[coarse_id].load(Ordering::Relaxed));
    }
    xadj.push(m_half as EdgeId);
    // The starts are monotone because coarse IDs are assigned in commit order.
    debug_assert!(xadj.windows(2).all(|w| w[0] <= w[1]));

    let adjacency: Vec<NodeId> = (0..m_half)
        .into_par_iter()
        .map(|e| {
            let old_label = coarse_edges[e].load(Ordering::Relaxed);
            remap[old_label as usize].load(Ordering::Relaxed)
        })
        .collect();
    let edge_weights: Vec<EdgeWeight> = (0..m_half)
        .map(|e| coarse_edge_weights[e].load(Ordering::Relaxed))
        .collect();
    let node_weights: Vec<NodeWeight> = (0..n_coarse)
        .map(|c| coarse_node_weights[c].load(Ordering::Relaxed))
        .collect();

    // Sort each coarse neighbourhood by target ID for deterministic downstream behaviour.
    let mut adjacency = adjacency;
    let mut edge_weights = edge_weights;
    for c in 0..n_coarse {
        let begin = xadj[c] as usize;
        let end = xadj[c + 1] as usize;
        let mut pairs: Vec<(NodeId, EdgeWeight)> = adjacency[begin..end]
            .iter()
            .copied()
            .zip(edge_weights[begin..end].iter().copied())
            .collect();
        pairs.sort_unstable_by_key(|&(v, _)| v);
        for (i, (v, w)) in pairs.into_iter().enumerate() {
            adjacency[begin + i] = v;
            edge_weights[begin + i] = w;
        }
    }

    let coarse = CsrGraph::from_parts(xadj, adjacency, edge_weights, node_weights);
    let mapping: Vec<NodeId> = (0..n)
        .map(|u| remap[clustering.label[u] as usize].load(Ordering::Relaxed))
        .collect();
    ContractionResult { coarse, mapping }
}

#[cfg(test)]
mod tests {
    use super::*;
    use graph::gen;
    use crate::coarsening::lp_clustering;
    use crate::context::CoarseningConfig;

    /// Computes the total weight of fine edges whose endpoints lie in different clusters.
    fn inter_cluster_weight(graph: &impl Graph, clustering: &Clustering) -> EdgeWeight {
        let mut total = 0;
        for u in 0..graph.n() as NodeId {
            graph.for_each_neighbor(u, &mut |v, w| {
                if u < v && clustering.label[u as usize] != clustering.label[v as usize] {
                    total += w;
                }
            });
        }
        total
    }

    fn check_contraction(graph: &impl Graph, clustering: &Clustering, result: &ContractionResult) {
        let coarse = &result.coarse;
        assert_eq!(coarse.n(), clustering.num_clusters);
        assert_eq!(result.mapping.len(), graph.n());
        // Node weight is preserved exactly.
        assert_eq!(coarse.total_node_weight(), graph.total_node_weight());
        // Coarse edge weight equals the weight of inter-cluster fine edges.
        assert_eq!(coarse.total_edge_weight(), inter_cluster_weight(graph, clustering));
        // The mapping is consistent: two fine vertices share a coarse vertex iff they
        // share a cluster label.
        for u in 0..graph.n() {
            for v in (u + 1)..graph.n().min(u + 50) {
                let same_cluster = clustering.label[u] == clustering.label[v];
                let same_coarse = result.mapping[u] == result.mapping[v];
                assert_eq!(same_cluster, same_coarse, "vertices {} and {}", u, v);
            }
        }
        // Coarse node weights equal the summed fine weights per coarse vertex.
        let mut expected = vec![0u64; coarse.n()];
        for u in 0..graph.n() {
            expected[result.mapping[u] as usize] += graph.node_weight(u as NodeId);
        }
        for c in 0..coarse.n() as NodeId {
            assert_eq!(coarse.node_weight(c), expected[c as usize]);
        }
        // The coarse graph must be symmetric.
        assert!(coarse.is_symmetric());
    }

    fn lp_clustering_for(graph: &impl Graph, max_weight: NodeWeight) -> Clustering {
        let config = CoarseningConfig { bump_threshold: 8, ..Default::default() };
        lp_clustering::cluster(graph, &config, max_weight, 7)
    }

    #[test]
    fn singleton_clustering_reproduces_the_graph() {
        let g = gen::with_random_edge_weights(&gen::grid2d(8, 8), 5, 3);
        let clustering = Clustering::singletons(g.n());
        for algorithm in [ContractionAlgorithm::Buffered, ContractionAlgorithm::OnePass] {
            let result = contract(&g, &clustering, algorithm, 16);
            check_contraction(&g, &clustering, &result);
            assert_eq!(result.coarse.n(), g.n());
            assert_eq!(result.coarse.m(), g.m());
            assert_eq!(result.coarse.total_edge_weight(), g.total_edge_weight());
        }
    }

    #[test]
    fn everything_in_one_cluster_gives_a_single_vertex() {
        let g = gen::complete(10);
        let clustering = Clustering::from_labels(vec![3; 10]);
        for algorithm in [ContractionAlgorithm::Buffered, ContractionAlgorithm::OnePass] {
            let result = contract(&g, &clustering, algorithm, 16);
            assert_eq!(result.coarse.n(), 1);
            assert_eq!(result.coarse.m(), 0);
            assert_eq!(result.coarse.node_weight(0), 10);
            assert!(result.mapping.iter().all(|&c| c == 0));
        }
    }

    #[test]
    fn both_algorithms_produce_equivalent_graphs() {
        for (name, g) in [
            ("grid", gen::grid2d(15, 15)),
            ("powerlaw", gen::rhg_like(600, 8, 3.0, 5)),
            ("weighted", gen::with_random_edge_weights(&gen::erdos_renyi(300, 1200, 2), 9, 4)),
        ] {
            let clustering = lp_clustering_for(&g, 8);
            let buffered = contract(&g, &clustering, ContractionAlgorithm::Buffered, 16);
            let one_pass = contract(&g, &clustering, ContractionAlgorithm::OnePass, 16);
            check_contraction(&g, &clustering, &buffered);
            check_contraction(&g, &clustering, &one_pass);
            assert_eq!(buffered.coarse.n(), one_pass.coarse.n(), "{}", name);
            assert_eq!(buffered.coarse.m(), one_pass.coarse.m(), "{}", name);
            assert_eq!(
                buffered.coarse.total_edge_weight(),
                one_pass.coarse.total_edge_weight(),
                "{}",
                name
            );
            // Degree multisets must agree (the graphs are isomorphic up to relabelling).
            let mut degrees_a: Vec<usize> =
                (0..buffered.coarse.n() as NodeId).map(|u| buffered.coarse.degree(u)).collect();
            let mut degrees_b: Vec<usize> =
                (0..one_pass.coarse.n() as NodeId).map(|u| one_pass.coarse.degree(u)).collect();
            degrees_a.sort_unstable();
            degrees_b.sort_unstable();
            assert_eq!(degrees_a, degrees_b, "{}", name);
        }
    }

    #[test]
    fn one_pass_handles_high_fanout_clusters_via_second_phase() {
        // Clustering the star's leaves into many tiny clusters gives the hub cluster a
        // huge coarse degree, forcing the bump path with a tiny threshold.
        let g = gen::star(300);
        let labels: Vec<ClusterId> = (0..300u32).map(|u| if u == 0 { 0 } else { u }).collect();
        let clustering = Clustering::from_labels(labels);
        let result = contract(&g, &clustering, ContractionAlgorithm::OnePass, 4);
        check_contraction(&g, &clustering, &result);
        assert_eq!(result.coarse.n(), 300);
        assert_eq!(result.coarse.max_degree(), 299);
    }

    #[test]
    fn contraction_after_real_clustering_shrinks_the_graph() {
        let g = gen::rgg2d(1000, 10, 9);
        let clustering = lp_clustering_for(&g, 8);
        let result = contract(&g, &clustering, ContractionAlgorithm::OnePass, 32);
        check_contraction(&g, &clustering, &result);
        assert!(result.coarse.n() < g.n() / 2, "coarse graph too large: {}", result.coarse.n());
        assert!(result.coarse.m() <= g.m());
    }

    #[test]
    fn empty_graph_contracts_to_empty_graph() {
        let g = graph::CsrGraphBuilder::new(0).build();
        let clustering = Clustering::singletons(0);
        for algorithm in [ContractionAlgorithm::Buffered, ContractionAlgorithm::OnePass] {
            let result = contract(&g, &clustering, algorithm, 8);
            assert_eq!(result.coarse.n(), 0);
            assert_eq!(result.coarse.m(), 0);
        }
    }
}
