//! Label propagation clustering — original and two-phase variants (paper §IV-A).
//!
//! Starting from singleton clusters, vertices are visited in random order in parallel;
//! a vertex joins the neighbouring cluster with the highest total connecting edge weight,
//! subject to a maximum cluster weight (size-constrained clustering, as in KaMinPar).
//!
//! The two variants differ only in how the per-vertex rating aggregation is backed:
//!
//! * [`LabelPropagationMode::PerThreadRatingMaps`]: every worker thread owns an `O(n)`
//!   sparse array (the original scheme, `O(n·p)` auxiliary memory in total).
//! * [`LabelPropagationMode::TwoPhase`]: phase one processes all vertices with small
//!   fixed-capacity hash tables and *bumps* vertices whose neighbourhood touches at least
//!   `T_bump` distinct clusters; phase two processes the bumped vertices one at a time
//!   with a single shared atomic sparse array and parallelism over their edges
//!   (`O(n + p·T_bump)` auxiliary memory).
//!
//! Rounds after the first are frontier-driven (active-set scheduling, in the spirit of
//! Sanders & Schulz's active-set local search): a vertex is revisited if its
//! neighbourhood changed in the previous round — a moved vertex and its neighbours — or
//! if its move lost a race. Vertices whose best move was rejected by the cluster weight
//! constraint are deliberately *not* retained: tracking per-cluster capacity changes
//! would cost `O(n)` per round (the label space is the vertex set), and full clusters
//! rarely shrink during clustering, so the retry value a full sweep would provide is
//! negligible here — unlike in LP *refinement*, where the analogous waiters are tracked
//! per block. Converged regions are never rescanned. The round loop itself
//! (collect/shuffle/run/swap plus stop criteria) is the shared driver of
//! `crate::lp_rounds`, instantiated here with the no-waiter semantics; the frontier
//! bitsets and the visit-order buffer live in the reusable [`HierarchyScratch`] arena.

use std::sync::atomic::{AtomicU64, AtomicUsize, Ordering};

use graph::ids;
use graph::traits::Graph;
use graph::{AtomicNodeId, NodeId, NodeWeight};
use memtrack::MemoryScope;
use parking_lot::Mutex;
use rayon::prelude::*;

use crate::context::{CoarseningConfig, EdgeRating, LabelPropagationMode};
use crate::lp_rounds::{drive_lp_rounds, LpRoundSemantics};
use crate::scratch::{AtomicBitset, HierarchyScratch};
use crate::ClusterId;

use super::rating_map::{AtomicSparseArray, FixedCapacityHashMap, SparseRatingMap};

/// A disjoint clustering of the vertices of a graph.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Clustering {
    /// `label[u]` is the cluster ID of vertex `u`. Cluster IDs are vertex IDs but are
    /// otherwise opaque labels: they need not be consecutive.
    pub label: Vec<ClusterId>,
    /// Number of distinct cluster labels.
    pub num_clusters: usize,
}

impl Clustering {
    /// Computes the number of distinct labels and builds the `Clustering`.
    ///
    /// Labels must be vertex IDs of the clustered graph, i.e. `label[u] < label.len()`
    /// (and below the reserved mark bit of the active width — see [`graph::ids`]).
    /// Distinct labels are counted allocation-free by temporarily marking the top bit
    /// of `label[c]` for every label `c` seen — the label vector itself serves as the
    /// "seen" set — and clearing the marks afterwards. The marking scheme owns the top
    /// bit of the active width ([`ids::ID_MARK_BIT`]), so the label space must stay
    /// below [`ids::MAX_NODE_COUNT`]: 2^31 at the 32-bit default, 2^63 under
    /// `wide-ids`.
    pub fn from_labels(mut label: Vec<ClusterId>) -> Self {
        let n = label.len();
        ids::assert_node_count(n, "Clustering::from_labels label space");
        let mut num_clusters = 0;
        for u in 0..n {
            let c = ids::unmark(label[u]) as usize;
            assert!(c < n, "label {} out of range for {} vertices", c, n);
            if !ids::is_marked(label[c]) {
                label[c] = ids::mark(label[c]);
                num_clusters += 1;
            }
        }
        label.par_chunks_mut(1 << 14).for_each(|chunk| {
            for l in chunk {
                *l = ids::unmark(*l);
            }
        });
        Self {
            label,
            num_clusters,
        }
    }

    /// Returns the singleton clustering (every vertex its own cluster).
    pub fn singletons(n: usize) -> Self {
        Self {
            label: (0..n as ClusterId).collect(),
            num_clusters: n,
        }
    }

    /// Total weight of every cluster, indexed by cluster label.
    pub fn cluster_weights(&self, graph: &impl Graph) -> Vec<NodeWeight> {
        let n = self.label.len();
        // Below this size the atomic fan-in setup costs more than the sequential scan.
        const PARALLEL_THRESHOLD: usize = 1 << 15;
        if n < PARALLEL_THRESHOLD {
            let mut weights = vec![0; n];
            for u in 0..n {
                weights[self.label[u] as usize] += graph.node_weight(u as NodeId);
            }
            return weights;
        }
        let weights: Vec<AtomicU64> = {
            let mut v = Vec::with_capacity(n);
            v.resize_with(n, || AtomicU64::new(0));
            v
        };
        self.label
            .par_chunks(1 << 13)
            .enumerate()
            .for_each(|(chunk_index, chunk)| {
                let base = (chunk_index << 13) as NodeId;
                for (i, &l) in chunk.iter().enumerate() {
                    weights[l as usize]
                        .fetch_add(graph.node_weight(base + i as NodeId), Ordering::Relaxed);
                }
            });
        (0..n)
            .into_par_iter()
            .map(|c| weights[c].load(Ordering::Relaxed))
            .collect()
    }
}

/// Shared mutable state of one clustering run.
struct ClusteringState {
    labels: Vec<AtomicNodeId>,
    cluster_weights: Vec<AtomicU64>,
    max_cluster_weight: NodeWeight,
}

impl ClusteringState {
    fn new(graph: &impl Graph, max_cluster_weight: NodeWeight) -> Self {
        let n = graph.n();
        let labels: Vec<AtomicNodeId> = (0..n as NodeId).map(AtomicNodeId::new).collect();
        let cluster_weights: Vec<AtomicU64> = (0..n as NodeId)
            .map(|u| AtomicU64::new(graph.node_weight(u)))
            .collect();
        Self {
            labels,
            cluster_weights,
            max_cluster_weight,
        }
    }

    #[inline]
    fn label(&self, u: NodeId) -> ClusterId {
        self.labels[u as usize].load(Ordering::Relaxed)
    }

    /// Tries to move `u` (weight `w`) from its current cluster to `target`; returns
    /// `true` on success. The target cluster weight is checked and updated with a CAS
    /// loop so the maximum cluster weight is never exceeded.
    fn try_move(&self, u: NodeId, w: NodeWeight, target: ClusterId) -> bool {
        let current = self.label(u);
        if current == target {
            return false;
        }
        let target_weight = &self.cluster_weights[target as usize];
        let mut observed = target_weight.load(Ordering::Relaxed);
        loop {
            if observed + w > self.max_cluster_weight {
                return false;
            }
            match target_weight.compare_exchange_weak(
                observed,
                observed + w,
                Ordering::Relaxed,
                Ordering::Relaxed,
            ) {
                Ok(_) => break,
                Err(actual) => observed = actual,
            }
        }
        self.cluster_weights[current as usize].fetch_sub(w, Ordering::Relaxed);
        self.labels[u as usize].store(target, Ordering::Relaxed);
        true
    }

    fn into_clustering(self) -> Clustering {
        let label: Vec<ClusterId> = self.labels.into_iter().map(|a| a.into_inner()).collect();
        Clustering::from_labels(label)
    }
}

/// Selects the best feasible target cluster among the rated candidates.
///
/// The best cluster is the one with the maximum rating whose weight constraint admits
/// `u`; ties are broken in favour of the current cluster to avoid oscillation.
fn select_target(
    ratings: impl Iterator<Item = (ClusterId, u64)>,
    current: ClusterId,
    node_weight: NodeWeight,
    state: &ClusteringState,
) -> Option<ClusterId> {
    let mut best: Option<(ClusterId, u64)> = None;
    for (c, r) in ratings {
        let feasible = c == current
            || state.cluster_weights[c as usize].load(Ordering::Relaxed) + node_weight
                <= state.max_cluster_weight;
        if !feasible {
            continue;
        }
        best = match best {
            None => Some((c, r)),
            Some((bc, br)) => {
                if r > br || (r == br && c == current && bc != current) {
                    Some((c, r))
                } else {
                    Some((bc, br))
                }
            }
        };
    }
    match best {
        Some((c, _)) if c != current => Some(c),
        _ => None,
    }
}

/// Scores the edge `(u, v)` of weight `w` for cluster selection. [`EdgeRating::Weight`]
/// is the identity; [`EdgeRating::DegreeScaled`] divides by the endpoint degrees
/// (shifted up so integer division keeps resolution), the advanced-coarsening stand-in
/// for algebraic-distance ratings (Safro et al.).
#[inline]
fn rate(rating: EdgeRating, graph: &impl Graph, u: NodeId, v: NodeId, w: u64) -> u64 {
    match rating {
        EdgeRating::Weight => w,
        EdgeRating::DegreeScaled => 1 + (w << 8) / (1 + (graph.degree(u) + graph.degree(v)) as u64),
    }
}

/// Marks a moved vertex and its neighbourhood as active for the next round.
#[inline]
fn mark_moved(graph: &impl Graph, frontier: Option<&AtomicBitset>, u: NodeId) {
    if let Some(bits) = frontier {
        bits.set(u as usize);
        graph.for_each_neighbor(u, &mut |v, _| bits.set(v as usize));
    }
}

/// Applies the outcome of [`select_target`] for `u`: performs the move (marking the
/// neighbourhood active) or, when the move lost a race against a concurrent one, keeps
/// `u` alone in the frontier so the next round retries it.
#[inline]
fn apply_selection(
    graph: &impl Graph,
    state: &ClusteringState,
    frontier: Option<&AtomicBitset>,
    moved: &AtomicUsize,
    u: NodeId,
    node_weight: NodeWeight,
    target: Option<ClusterId>,
) {
    if let Some(target) = target {
        if state.try_move(u, node_weight, target) {
            moved.fetch_add(1, Ordering::Relaxed);
            mark_moved(graph, frontier, u);
        } else if let Some(bits) = frontier {
            bits.set(u as usize);
        }
    }
}

/// Runs label propagation clustering on `graph` with freshly allocated scratch memory.
/// Prefer [`cluster_with_scratch`] inside the multilevel pipeline.
pub fn cluster(
    graph: &impl Graph,
    config: &CoarseningConfig,
    max_cluster_weight: NodeWeight,
    seed: u64,
) -> Clustering {
    let mut scratch = HierarchyScratch::new();
    cluster_with_scratch(graph, config, max_cluster_weight, seed, &mut scratch)
}

/// Runs label propagation clustering on `graph` and returns the resulting clustering.
///
/// `max_cluster_weight` is the size constraint; `seed` controls the random visit order.
/// The function must be called from within the partitioner's rayon thread pool (or any
/// pool); it uses `rayon::current_num_threads()` worker-local state. The visit-order
/// buffer and the frontier bitsets are reused from `scratch`.
pub fn cluster_with_scratch(
    graph: &impl Graph,
    config: &CoarseningConfig,
    max_cluster_weight: NodeWeight,
    seed: u64,
    scratch: &mut HierarchyScratch,
) -> Clustering {
    let n = graph.n();
    if n == 0 {
        return Clustering {
            label: Vec::new(),
            num_clusters: 0,
        };
    }
    let state = ClusteringState::new(graph, max_cluster_weight);
    let num_threads = rayon::current_num_threads().max(1);
    let use_frontier = config.lp_frontier;

    /// Clustering semantics for the shared driver: historical `seed ^ round` shuffle
    /// seeds, no waiters, stop on the first move-free round (the trait defaults).
    struct ClusteringRounds<'r> {
        seed: u64,
        run: &'r mut dyn FnMut(&[NodeId], Option<&AtomicBitset>) -> usize,
        /// Forwards the round's visit order to the graph's readahead hint (a no-op on
        /// in-memory representations).
        prefetch: &'r dyn Fn(&[NodeId]),
    }

    impl LpRoundSemantics for ClusteringRounds<'_> {
        fn round_seed(&self, round: usize) -> u64 {
            self.seed ^ round as u64
        }

        fn obs_counters(&self) -> (obs::Counter, obs::Counter) {
            (obs::Counter::LpClusterRounds, obs::Counter::LpClusterMoves)
        }

        fn run_round(&mut self, order: &[NodeId], frontier: Option<&AtomicBitset>) -> usize {
            (self.run)(order, frontier)
        }

        fn prefetch_round(&mut self, order: &[NodeId]) {
            (self.prefetch)(order);
        }
    }
    let prefetch = |order: &[NodeId]| graph.prefetch(order);

    match config.lp_mode {
        LabelPropagationMode::PerThreadRatingMaps => {
            // Auxiliary memory: one O(n) rating map per thread (the Figure 2 culprit).
            let maps: Vec<Mutex<SparseRatingMap>> = (0..num_threads)
                .map(|_| Mutex::new(SparseRatingMap::new(n)))
                .collect();
            let aux_bytes: usize = maps.iter().map(|m| m.lock().memory_bytes()).sum();
            let _scope = MemoryScope::charge_global(aux_bytes);
            let mut run = |order: &[NodeId], frontier: Option<&AtomicBitset>| {
                run_round_per_thread_maps(graph, &state, &maps, config.edge_rating, order, frontier)
            };
            let mut semantics = ClusteringRounds {
                seed,
                run: &mut run,
                prefetch: &prefetch,
            };
            drive_lp_rounds(n, config.lp_rounds, use_frontier, scratch, &mut semantics);
        }
        LabelPropagationMode::TwoPhase => {
            // Auxiliary memory: p fixed-capacity hash tables plus one shared O(n) array.
            let shared = AtomicSparseArray::new(n);
            let _scope = MemoryScope::charge_global(
                shared.memory_bytes()
                    + num_threads * FixedCapacityHashMap::new(config.bump_threshold).memory_bytes(),
            );
            let mut run = |order: &[NodeId], frontier: Option<&AtomicBitset>| {
                run_round_two_phase(graph, &state, config, &shared, order, frontier)
            };
            let mut semantics = ClusteringRounds {
                seed,
                run: &mut run,
                prefetch: &prefetch,
            };
            drive_lp_rounds(n, config.lp_rounds, use_frontier, scratch, &mut semantics);
        }
    }

    state.into_clustering()
}

/// One round of the original algorithm: every thread owns a full sparse rating map.
fn run_round_per_thread_maps(
    graph: &impl Graph,
    state: &ClusteringState,
    maps: &[Mutex<SparseRatingMap>],
    rating: EdgeRating,
    order: &[NodeId],
    frontier: Option<&AtomicBitset>,
) -> usize {
    let moved = AtomicUsize::new(0);
    order.par_chunks(256).for_each(|chunk| {
        let thread = rayon::current_thread_index().unwrap_or(0) % maps.len();
        let mut map = maps[thread].lock();
        for &u in chunk {
            let node_weight = graph.node_weight(u);
            map.clear();
            graph.for_each_neighbor(u, &mut |v, w| {
                map.add(state.label(v), rate(rating, graph, u, v, w));
            });
            let current = state.label(u);
            let target = select_target(map.iter(), current, node_weight, state);
            apply_selection(graph, state, frontier, &moved, u, node_weight, target);
        }
    });
    moved.load(Ordering::Relaxed)
}

/// One round of two-phase label propagation (paper Algorithm 2).
fn run_round_two_phase(
    graph: &impl Graph,
    state: &ClusteringState,
    config: &CoarseningConfig,
    shared: &AtomicSparseArray,
    order: &[NodeId],
    frontier: Option<&AtomicBitset>,
) -> usize {
    let moved = AtomicUsize::new(0);
    // ---- First phase: small fixed-capacity hash tables, bump on overflow. ----
    let bumped: Vec<NodeId> = order
        .par_chunks(256)
        .map(|chunk| {
            let mut map = FixedCapacityHashMap::new(config.bump_threshold);
            let mut bumped = Vec::new();
            for &u in chunk {
                let node_weight = graph.node_weight(u);
                map.clear();
                let mut overflow = false;
                graph.for_each_neighbor(u, &mut |v, w| {
                    if !overflow
                        && !map.add(state.label(v), rate(config.edge_rating, graph, u, v, w))
                    {
                        overflow = true;
                    }
                });
                if overflow {
                    bumped.push(u);
                    continue;
                }
                let current = state.label(u);
                let target = select_target(map.iter(), current, node_weight, state);
                apply_selection(graph, state, frontier, &moved, u, node_weight, target);
            }
            bumped
        })
        .reduce(Vec::new, |mut a, mut b| {
            a.append(&mut b);
            a
        });

    // ---- Second phase: bumped vertices sequentially, parallelism over their edges. ----
    for &u in &bumped {
        let node_weight = graph.node_weight(u);
        let neighbors = graph.neighbors_vec(u);
        // Parallel aggregation into the shared array, buffered through per-chunk hash
        // tables to reduce atomic contention (paper Algorithm 2, FlushRatingMap).
        let touched: Vec<NodeId> = neighbors
            .par_chunks(1024)
            .map(|chunk| {
                let mut buffer = FixedCapacityHashMap::new(config.bump_threshold);
                let mut touched = Vec::new();
                for &(v, w) in chunk {
                    let c = state.label(v);
                    let r = rate(config.edge_rating, graph, u, v, w);
                    if !buffer.add(c, r) {
                        flush(&mut buffer, shared, &mut touched);
                        buffer.add(c, r);
                    }
                }
                flush(&mut buffer, shared, &mut touched);
                touched
            })
            .reduce(Vec::new, |mut a, mut b| {
                a.append(&mut b);
                a
            });
        let current = state.label(u);
        let target = select_target(
            touched.iter().map(|&c| (c, shared.get(c))),
            current,
            node_weight,
            state,
        );
        shared.reset(&touched);
        apply_selection(graph, state, frontier, &moved, u, node_weight, target);
    }
    moved.load(Ordering::Relaxed)
}

/// Applies the entries of `buffer` to the shared array and records newly touched keys.
fn flush(buffer: &mut FixedCapacityHashMap, shared: &AtomicSparseArray, touched: &mut Vec<NodeId>) {
    for (c, w) in buffer.iter() {
        if shared.add(c, w) {
            touched.push(c);
        }
    }
    buffer.clear();
}

#[cfg(test)]
mod tests {
    use super::*;
    use graph::gen;

    fn run(graph: &impl Graph, mode: LabelPropagationMode, max_weight: NodeWeight) -> Clustering {
        let config = CoarseningConfig {
            lp_mode: mode,
            bump_threshold: 8,
            ..Default::default()
        };
        cluster(graph, &config, max_weight, 42)
    }

    fn check_invariants(graph: &impl Graph, clustering: &Clustering, max_weight: NodeWeight) {
        assert_eq!(clustering.label.len(), graph.n());
        let weights = clustering.cluster_weights(graph);
        for (c, &w) in weights.iter().enumerate() {
            assert!(
                w <= max_weight || {
                    // A cluster may exceed the limit only if it consists of a single
                    // vertex that is itself heavier than the limit.
                    let members: Vec<_> = clustering
                        .label
                        .iter()
                        .enumerate()
                        .filter(|&(_, &l)| l as usize == c)
                        .collect();
                    members.len() == 1
                },
                "cluster {} exceeds the weight limit: {} > {}",
                c,
                w,
                max_weight
            );
        }
        let total: NodeWeight = weights.iter().sum();
        assert_eq!(total, graph.total_node_weight());
    }

    #[test]
    fn clusters_shrink_a_grid() {
        let g = gen::grid2d(20, 20);
        for mode in [
            LabelPropagationMode::PerThreadRatingMaps,
            LabelPropagationMode::TwoPhase,
        ] {
            let clustering = run(&g, mode, 8);
            check_invariants(&g, &clustering, 8);
            assert!(
                clustering.num_clusters < g.n() / 2,
                "{:?}: expected the grid to shrink, got {} clusters",
                mode,
                clustering.num_clusters
            );
        }
    }

    #[test]
    fn cliques_collapse_into_single_clusters() {
        // Three cliques of 8 vertices connected by bridges: LP should discover them.
        let g = gen::clique_chain(3, 8);
        let clustering = run(&g, LabelPropagationMode::TwoPhase, 8);
        check_invariants(&g, &clustering, 8);
        assert!(
            clustering.num_clusters <= 6,
            "got {} clusters",
            clustering.num_clusters
        );
        // Vertices of the same clique should mostly share a label.
        for clique in 0..3 {
            let labels: std::collections::HashSet<_> = (clique * 8..(clique + 1) * 8)
                .map(|u| clustering.label[u])
                .collect();
            assert!(
                labels.len() <= 2,
                "clique {} split into {} clusters",
                clique,
                labels.len()
            );
        }
    }

    #[test]
    fn max_cluster_weight_is_respected() {
        let g = gen::complete(32);
        for mode in [
            LabelPropagationMode::PerThreadRatingMaps,
            LabelPropagationMode::TwoPhase,
        ] {
            let clustering = run(&g, mode, 4);
            check_invariants(&g, &clustering, 4);
            assert!(clustering.num_clusters >= 8);
        }
    }

    #[test]
    fn two_phase_handles_high_degree_hubs() {
        // Star graph: the hub has degree 400 but its neighbours form at most a handful of
        // clusters; the leaves' neighbourhoods are tiny. Use a tiny bump threshold so the
        // second phase actually runs.
        let g = gen::star(401);
        let config = CoarseningConfig {
            lp_mode: LabelPropagationMode::TwoPhase,
            bump_threshold: 4,
            lp_rounds: 2,
            ..Default::default()
        };
        let clustering = cluster(&g, &config, 64, 7);
        check_invariants(&g, &clustering, 64);
        assert!(clustering.num_clusters < g.n());
    }

    #[test]
    fn both_modes_produce_comparable_quality() {
        let g = gen::rgg2d(1200, 12, 3);
        let a = run(&g, LabelPropagationMode::PerThreadRatingMaps, 16);
        let b = run(&g, LabelPropagationMode::TwoPhase, 16);
        check_invariants(&g, &a, 16);
        check_invariants(&g, &b, 16);
        let ratio = a.num_clusters as f64 / b.num_clusters as f64;
        assert!(
            (0.5..2.0).contains(&ratio),
            "cluster counts diverge too much: {} vs {}",
            a.num_clusters,
            b.num_clusters
        );
    }

    #[test]
    fn frontier_and_full_sweep_agree_on_quality() {
        let g = gen::rgg2d(1500, 10, 9);
        let frontier_config = CoarseningConfig {
            lp_frontier: true,
            ..Default::default()
        };
        let sweep_config = CoarseningConfig {
            lp_frontier: false,
            ..Default::default()
        };
        let a = cluster(&g, &frontier_config, 16, 3);
        let b = cluster(&g, &sweep_config, 16, 3);
        check_invariants(&g, &a, 16);
        check_invariants(&g, &b, 16);
        let ratio = a.num_clusters as f64 / b.num_clusters as f64;
        assert!(
            (0.5..2.0).contains(&ratio),
            "frontier clustering quality diverges: {} vs {} clusters",
            a.num_clusters,
            b.num_clusters
        );
    }

    #[test]
    fn degree_scaled_rating_produces_valid_clusterings() {
        // Power-law graph with hubs: the advanced-coarsening rating must respect all
        // clustering invariants and still shrink the graph.
        let g = gen::rhg_like(2_000, 10, 2.6, 4);
        let config = CoarseningConfig {
            edge_rating: EdgeRating::DegreeScaled,
            ..Default::default()
        };
        let c = cluster(&g, &config, 32, 5);
        check_invariants(&g, &c, 32);
        assert!(
            c.num_clusters < g.n(),
            "no shrinkage with degree-scaled rating"
        );
    }

    #[test]
    fn empty_and_singleton_graphs() {
        let empty = graph::CsrGraphBuilder::new(0).build();
        let c = run(&empty, LabelPropagationMode::TwoPhase, 10);
        assert_eq!(c.num_clusters, 0);

        let single = graph::CsrGraphBuilder::new(1).build();
        let c = run(&single, LabelPropagationMode::TwoPhase, 10);
        assert_eq!(c.num_clusters, 1);
        assert_eq!(c.label, vec![0]);
    }

    #[test]
    fn singleton_clustering_helper() {
        let c = Clustering::singletons(5);
        assert_eq!(c.num_clusters, 5);
        assert_eq!(c.label, vec![0, 1, 2, 3, 4]);
        let g = gen::path(5);
        assert_eq!(c.cluster_weights(&g), vec![1, 1, 1, 1, 1]);
    }

    #[test]
    fn from_labels_counts_non_consecutive_labels() {
        // Labels need not be consecutive; a label's vertex need not carry its own label
        // (vertex 6 has label 1, yet label 6 names another cluster).
        let c = Clustering::from_labels(vec![3, 3, 6, 6, 1, 3, 1]);
        assert_eq!(c.num_clusters, 3);
        // The marking pass must leave the labels untouched.
        assert_eq!(c.label, vec![3, 3, 6, 6, 1, 3, 1]);

        let c = Clustering::from_labels(vec![0; 6]);
        assert_eq!(c.num_clusters, 1);

        let c = Clustering::from_labels(Vec::new());
        assert_eq!(c.num_clusters, 0);
    }

    #[test]
    #[cfg(not(feature = "wide-ids"))]
    fn from_labels_label_space_is_capped_at_2_31_by_default() {
        // The marking scheme owns bit 31 at the 32-bit width, so the admissible label
        // space tops out at 2^31 (arithmetic-level check of the gate itself).
        assert_eq!(ids::MAX_NODE_COUNT, 1usize << 31);
    }

    #[test]
    #[cfg(feature = "wide-ids")]
    #[allow(clippy::assertions_on_constants)]
    fn from_labels_no_longer_capped_at_2_31_under_wide_ids() {
        // Arithmetic-level: the mark moved to bit 63, so the old 2^31 assert is gone —
        // the admissible label space is 2^63 and labels at/above the old wall survive
        // the sentinel round trip. No giant allocation needed to check the gate.
        assert!(ids::MAX_NODE_COUNT > 1usize << 31);
        assert_eq!(ids::MAX_NODE_COUNT, 1usize << 63);
        let big: ClusterId = (1u64 << 31) as ClusterId + 7;
        assert!(!ids::is_marked(big), "an id above 2^31 is not a sentinel");
        assert!(ids::is_marked(ids::mark(big)));
        assert_eq!(ids::unmark(ids::mark(big)), big);
    }

    #[test]
    fn cluster_weights_parallel_and_sequential_agree() {
        // Large enough to cross the parallel threshold inside cluster_weights.
        let n = (1 << 15) + 17;
        let g = gen::path(n);
        let label: Vec<ClusterId> = (0..n as ClusterId).map(|u| u % 1000).collect();
        let clustering = Clustering::from_labels(label);
        let weights = clustering.cluster_weights(&g);
        let mut expected = vec![0u64; n];
        for u in 0..n {
            expected[clustering.label[u] as usize] += 1;
        }
        assert_eq!(weights, expected);
    }

    #[test]
    fn deterministic_for_fixed_seed_single_thread() {
        let g = gen::erdos_renyi(300, 900, 5);
        let pool = rayon::ThreadPoolBuilder::new()
            .num_threads(1)
            .build()
            .unwrap();
        let config = CoarseningConfig::default();
        let a = pool.install(|| cluster(&g, &config, 8, 123));
        let b = pool.install(|| cluster(&g, &config, 8, 123));
        assert_eq!(a, b);
    }
}
