//! The coarsening stage of the multilevel framework.
//!
//! Coarsening repeatedly (1) computes a size-constrained label propagation clustering
//! ([`lp_clustering`]), (2) optionally merges leftover singletons via two-hop clustering
//! ([`two_hop`]) and (3) contracts the clustering ([`mod@contract`]) until the graph is small
//! enough for initial partitioning or stops shrinking. The resulting [`Hierarchy`]
//! records every coarse graph together with the fine-to-coarse vertex mapping needed to
//! project partitions back up during uncoarsening.

pub mod contract;
pub mod lp_clustering;
pub mod rating_map;
pub mod two_hop;

pub use contract::{contract, contract_with_scratch, ContractionResult};
pub use lp_clustering::{cluster, cluster_with_scratch, Clustering};
pub use two_hop::two_hop_clustering;

use graph::csr::CsrGraph;
use graph::traits::Graph;
use graph::{NodeId, NodeWeight};
use memtrack::{MemoryScope, PhaseTracker};

use obs::{Counter, ProgressEvent, SpanKind};

use crate::context::PartitionerConfig;
use crate::partitioner::obs_phase;
use crate::scratch::HierarchyScratch;

/// One level of the multilevel hierarchy.
#[derive(Debug)]
pub struct Level {
    /// The coarse graph produced at this level.
    pub coarse: CsrGraph,
    /// Maps each vertex of the *finer* graph (the input graph for the first level) to
    /// its coarse vertex in [`Level::coarse`].
    pub mapping: Vec<NodeId>,
}

/// The full coarsening hierarchy, from the first coarse graph down to the coarsest one.
#[derive(Debug, Default)]
pub struct Hierarchy {
    /// Levels in coarsening order: `levels[0]` was contracted from the input graph.
    pub levels: Vec<Level>,
    /// Memory charges for the stored coarse graphs (released when the hierarchy drops).
    charges: Vec<MemoryScope<'static>>,
}

impl Hierarchy {
    /// Returns the coarsest graph, or `None` if no coarsening step was performed.
    pub fn coarsest(&self) -> Option<&CsrGraph> {
        self.levels.last().map(|l| &l.coarse)
    }

    /// Number of coarsening levels.
    pub fn depth(&self) -> usize {
        self.levels.len()
    }
}

/// Maximum cluster weight used on a level, following the KaMinPar rule: clusters may not
/// exceed a fraction of the average block weight of the final partition, so coarse
/// vertices always fit into blocks.
pub fn max_cluster_weight(
    total_node_weight: NodeWeight,
    k: usize,
    contraction_limit: usize,
    fraction: f64,
) -> NodeWeight {
    let denominator = (contraction_limit * k).max(1) as f64;
    ((total_node_weight as f64 * fraction / denominator).ceil() as NodeWeight).max(1)
}

/// Runs the full coarsening stage on `graph` with freshly allocated scratch memory.
/// Prefer [`coarsen_with_scratch`] when the caller owns an arena for the whole run.
pub fn coarsen(
    graph: &impl Graph,
    config: &PartitionerConfig,
    tracker: &PhaseTracker,
) -> Hierarchy {
    let mut scratch = HierarchyScratch::new();
    coarsen_with_scratch(graph, config, tracker, &mut scratch)
}

/// Runs the full coarsening stage on `graph`, reusing the buffers of `scratch` across
/// every hierarchy level (the first, largest level sizes them; later levels are
/// allocation-free).
///
/// Phases are reported to `tracker` (clustering and contraction separately per level,
/// mirroring the breakdown of Figure 2).
pub fn coarsen_with_scratch(
    graph: &impl Graph,
    config: &PartitionerConfig,
    tracker: &PhaseTracker,
    scratch: &mut HierarchyScratch,
) -> Hierarchy {
    let coarsening = &config.coarsening;
    let stop_at = (coarsening.contraction_limit * config.k).max(1);
    let mut hierarchy = Hierarchy::default();

    // Level 0 runs on the (possibly compressed) input graph; subsequent levels always run
    // on the uncompressed coarse CSR graphs.
    let mut level = 0usize;
    let mut current: Option<CsrGraph> = None;
    loop {
        let (n, total_weight) = match &current {
            None => (graph.n(), graph.total_node_weight()),
            Some(g) => (g.n(), g.total_node_weight()),
        };
        if n <= stop_at {
            break;
        }
        let limit = max_cluster_weight(
            total_weight,
            config.k,
            coarsening.contraction_limit,
            coarsening.max_cluster_weight_fraction,
        );
        let seed = config.seed ^ ((level as u64 + 1) << 32);
        let obs = scratch.obs.clone();
        let mut level_span = obs.span_at(SpanKind::Level, "coarsen_level", level as u64);
        level_span.attr("fine_nodes", n as u64);
        let clustering = obs_phase(&obs, tracker, "cluster", level, || match &current {
            None => {
                let mut c =
                    lp_clustering::cluster_with_scratch(graph, coarsening, limit, seed, scratch);
                if coarsening.two_hop_clustering
                    && c.num_clusters as f64 > coarsening.min_shrink_factor * n as f64
                {
                    two_hop_clustering(graph, &mut c, limit);
                }
                c
            }
            Some(g) => {
                let mut c =
                    lp_clustering::cluster_with_scratch(g, coarsening, limit, seed, scratch);
                if coarsening.two_hop_clustering
                    && c.num_clusters as f64 > coarsening.min_shrink_factor * n as f64
                {
                    two_hop_clustering(g, &mut c, limit);
                }
                c
            }
        });
        // Stop if the clustering no longer shrinks the graph.
        if clustering.num_clusters as f64 > coarsening.min_shrink_factor * n as f64 {
            break;
        }
        let result = obs_phase(&obs, tracker, "contract", level, || match &current {
            None => contract::contract_with_scratch(
                graph,
                &clustering,
                coarsening.contraction,
                coarsening.bump_threshold,
                scratch,
            ),
            Some(g) => contract::contract_with_scratch(
                g,
                &clustering,
                coarsening.contraction,
                coarsening.bump_threshold,
                scratch,
            ),
        });
        level_span.attr("coarse_nodes", result.coarse.n() as u64);
        level_span.attr("coarse_edges", result.coarse.m() as u64);
        drop(level_span);
        obs.add(Counter::CoarseningLevels, 1);
        config.obs.progress.emit(&ProgressEvent::LevelCoarsened {
            level,
            fine_nodes: n,
            coarse_nodes: result.coarse.n(),
            coarse_edges: result.coarse.m(),
        });
        hierarchy
            .charges
            .push(MemoryScope::charge_global(result.coarse.size_in_bytes()));
        current = Some(result.coarse.clone());
        hierarchy.levels.push(Level {
            coarse: result.coarse,
            mapping: result.mapping,
        });
        level += 1;
        // Safety valve: the hierarchy can never be deeper than log2(n) levels on sane
        // inputs; stop after a generous bound to guarantee termination.
        if level > 64 {
            break;
        }
    }
    // Contraction was the only user of the over-reserved edge buffers; free them so the
    // remaining pipeline stages don't carry 2m of physically backed scratch.
    scratch.release_edges();
    hierarchy
}

#[cfg(test)]
mod tests {
    use super::*;
    use graph::gen;

    #[test]
    fn max_cluster_weight_is_at_least_one() {
        assert_eq!(max_cluster_weight(10, 1000, 40, 1.0), 1);
        assert!(max_cluster_weight(1_000_000, 8, 40, 1.0) > 1);
        assert_eq!(max_cluster_weight(0, 4, 40, 1.0), 1);
    }

    #[test]
    fn coarsening_produces_a_shrinking_hierarchy() {
        let g = gen::grid2d(40, 40);
        let config = PartitionerConfig::terapart(4);
        let tracker = PhaseTracker::new();
        let hierarchy = coarsen(&g, &config, &tracker);
        assert!(
            hierarchy.depth() >= 1,
            "expected at least one coarsening level"
        );
        // Graph sizes strictly decrease along the hierarchy.
        let mut prev_n = g.n();
        for level in &hierarchy.levels {
            assert!(level.coarse.n() < prev_n);
            assert_eq!(level.coarse.total_node_weight(), g.total_node_weight());
            prev_n = level.coarse.n();
        }
        // The coarsest graph respects the contraction limit within a factor (coarsening
        // stops once it cannot shrink below it).
        let coarsest = hierarchy.coarsest().unwrap();
        assert!(coarsest.n() <= g.n() / 2);
        // Phases were recorded for clustering and contraction.
        assert!(tracker.peak_of("cluster").is_some());
        assert!(tracker.peak_of("contract").is_some());
    }

    #[test]
    fn mappings_compose_and_cover_all_vertices() {
        let g = gen::rgg2d(1500, 10, 2);
        let config = PartitionerConfig::terapart(2);
        let tracker = PhaseTracker::new();
        let hierarchy = coarsen(&g, &config, &tracker);
        assert!(hierarchy.depth() >= 1);
        // First mapping covers the input graph.
        assert_eq!(hierarchy.levels[0].mapping.len(), g.n());
        for (i, level) in hierarchy.levels.iter().enumerate() {
            let coarse_n = level.coarse.n();
            assert!(level.mapping.iter().all(|&c| (c as usize) < coarse_n));
            if i + 1 < hierarchy.levels.len() {
                assert_eq!(hierarchy.levels[i + 1].mapping.len(), coarse_n);
            }
        }
    }

    #[test]
    fn small_graphs_are_not_coarsened() {
        let g = gen::grid2d(4, 4);
        let config = PartitionerConfig::terapart(8);
        let tracker = PhaseTracker::new();
        let hierarchy = coarsen(&g, &config, &tracker);
        assert_eq!(hierarchy.depth(), 0);
        assert!(hierarchy.coarsest().is_none());
    }

    #[test]
    fn kaminpar_and_terapart_configs_both_coarsen() {
        let g = gen::rhg_like(2000, 8, 3.0, 11);
        for config in [
            PartitionerConfig::kaminpar(4),
            PartitionerConfig::terapart(4),
        ] {
            let tracker = PhaseTracker::new();
            let hierarchy = coarsen(&g, &config, &tracker);
            assert!(
                hierarchy.depth() >= 1,
                "no coarsening for {:?}",
                config.coarsening.lp_mode
            );
            let coarsest = hierarchy.coarsest().unwrap();
            assert!(coarsest.n() < g.n());
            assert_eq!(coarsest.total_node_weight(), g.total_node_weight());
        }
    }
}
