//! Rating maps: the data structures that aggregate edge weights per cluster (paper §IV-A1).
//!
//! Label propagation needs, for every visited vertex, the total edge weight towards each
//! neighbouring cluster. Three implementations with different memory/speed trade-offs are
//! provided:
//!
//! * [`FixedCapacityHashMap`] — a small open-addressing table without dynamic growth.
//!   Insertion reports when the number of *distinct* keys reaches the bump threshold, at
//!   which point the caller defers the vertex to the second phase. Used by two-phase
//!   label propagation and two-phase contraction.
//! * [`SparseRatingMap`] — the classic `O(n)` sparse array plus a list of touched
//!   entries for `O(touched)` reset. One instance per thread reproduces the original
//!   KaMinPar memory behaviour (`O(n·p)`).
//! * [`AtomicSparseArray`] — a single shared `O(n)` array with atomic fetch-add updates
//!   and per-thread touched lists, used by the second phase where parallelism is over
//!   the edges of one vertex.

use std::sync::atomic::{AtomicU64, Ordering};

use graph::{EdgeWeight, NodeId};

/// A fixed-capacity open-addressing hash map from cluster IDs to ratings.
///
/// The capacity is fixed at construction; the map never grows. [`FixedCapacityHashMap::add`]
/// returns `false` once the number of distinct keys would exceed the configured limit,
/// signalling that the vertex must be bumped to the second phase.
///
/// Occupied slots are tracked in a touched list so that [`FixedCapacityHashMap::clear`]
/// and [`FixedCapacityHashMap::iter`] cost `O(distinct keys)` instead of `O(capacity)`.
/// The map is cleared once per visited vertex (label propagation) or cluster
/// (contraction), so with the paper's large bump thresholds the full-capacity reset of
/// the original implementation dominated the entire hot loop.
#[derive(Debug, Clone)]
pub struct FixedCapacityHashMap {
    keys: Vec<NodeId>,
    values: Vec<EdgeWeight>,
    /// Slots currently occupied, in insertion order (`len()` == `touched.len()`).
    touched: Vec<u32>,
    /// Maximum number of distinct keys before `add` reports an overflow.
    limit: usize,
    mask: usize,
}

/// Sentinel marking an empty slot.
const EMPTY_KEY: NodeId = NodeId::MAX;

impl FixedCapacityHashMap {
    /// Creates a map that accepts up to `limit` distinct keys. The underlying table is
    /// sized to twice the limit (rounded to a power of two) to keep probe sequences short.
    pub fn new(limit: usize) -> Self {
        let capacity = (2 * limit.max(1)).next_power_of_two();
        Self {
            keys: vec![EMPTY_KEY; capacity],
            values: vec![0; capacity],
            touched: Vec::with_capacity(limit.max(1)),
            limit: limit.max(1),
            mask: capacity - 1,
        }
    }

    /// Number of distinct keys stored.
    pub fn len(&self) -> usize {
        self.touched.len()
    }

    /// The distinct-key limit this map was constructed with.
    pub fn limit(&self) -> usize {
        self.limit
    }

    /// Returns `true` if no keys are stored.
    pub fn is_empty(&self) -> bool {
        self.touched.is_empty()
    }

    /// Number of bytes of heap memory the table occupies (for memory accounting).
    pub fn memory_bytes(&self) -> usize {
        self.keys.len() * std::mem::size_of::<NodeId>()
            + self.values.len() * std::mem::size_of::<EdgeWeight>()
            + self.touched.capacity() * std::mem::size_of::<u32>()
    }

    #[inline]
    fn slot_of(&self, key: NodeId) -> usize {
        // Multiplicative hashing (Fibonacci constant); good enough for cluster IDs.
        (graph::ids::widen(key).wrapping_mul(0x9E37_79B9_7F4A_7C15) >> 32) as usize & self.mask
    }

    /// Adds `weight` to the rating of `key`. Returns `false` if the key is new and the
    /// distinct-key limit has already been reached (the value is *not* inserted).
    pub fn add(&mut self, key: NodeId, weight: EdgeWeight) -> bool {
        let mut slot = self.slot_of(key);
        loop {
            if self.keys[slot] == key {
                self.values[slot] += weight;
                return true;
            }
            if self.keys[slot] == EMPTY_KEY {
                if self.touched.len() >= self.limit {
                    return false;
                }
                self.keys[slot] = key;
                self.values[slot] = weight;
                self.touched.push(slot as u32);
                return true;
            }
            slot = (slot + 1) & self.mask;
        }
    }

    /// Returns the rating of `key`, or 0 if absent.
    pub fn get(&self, key: NodeId) -> EdgeWeight {
        let mut slot = self.slot_of(key);
        loop {
            if self.keys[slot] == key {
                return self.values[slot];
            }
            if self.keys[slot] == EMPTY_KEY {
                return 0;
            }
            slot = (slot + 1) & self.mask;
        }
    }

    /// Iterates over all `(key, rating)` entries in insertion order.
    pub fn iter(&self) -> impl Iterator<Item = (NodeId, EdgeWeight)> + '_ {
        self.touched
            .iter()
            .map(|&slot| (self.keys[slot as usize], self.values[slot as usize]))
    }

    /// Returns the key with the maximum rating, breaking ties towards the key for which
    /// `prefer` returns `true` (used to keep a vertex in its current cluster on ties).
    pub fn argmax(&self, prefer: impl Fn(NodeId) -> bool) -> Option<(NodeId, EdgeWeight)> {
        let mut best: Option<(NodeId, EdgeWeight)> = None;
        for (k, v) in self.iter() {
            best = match best {
                None => Some((k, v)),
                Some((bk, bv)) => {
                    if v > bv || (v == bv && prefer(k) && !prefer(bk)) {
                        Some((k, v))
                    } else {
                        Some((bk, bv))
                    }
                }
            };
        }
        best
    }

    /// Removes all entries in `O(distinct keys)`, keeping the allocated capacity.
    pub fn clear(&mut self) {
        for &slot in &self.touched {
            self.keys[slot as usize] = EMPTY_KEY;
            self.values[slot as usize] = 0;
        }
        self.touched.clear();
    }
}

/// The classic sparse-array rating map: a dense array indexed by cluster ID plus the list
/// of touched entries used for resetting.
#[derive(Debug, Clone)]
pub struct SparseRatingMap {
    ratings: Vec<EdgeWeight>,
    touched: Vec<NodeId>,
}

impl SparseRatingMap {
    /// Creates a rating map for cluster IDs in `0..n`.
    pub fn new(n: usize) -> Self {
        Self {
            ratings: vec![0; n],
            touched: Vec::new(),
        }
    }

    /// Number of bytes of heap memory the map occupies (for memory accounting).
    pub fn memory_bytes(&self) -> usize {
        self.ratings.len() * std::mem::size_of::<EdgeWeight>()
            + self.touched.capacity() * std::mem::size_of::<NodeId>()
    }

    /// Adds `weight` to the rating of `key`.
    pub fn add(&mut self, key: NodeId, weight: EdgeWeight) {
        if self.ratings[key as usize] == 0 {
            self.touched.push(key);
        }
        self.ratings[key as usize] += weight;
    }

    /// Returns the rating of `key`.
    pub fn get(&self, key: NodeId) -> EdgeWeight {
        self.ratings[key as usize]
    }

    /// Number of distinct touched keys.
    pub fn len(&self) -> usize {
        self.touched.len()
    }

    /// Returns `true` if nothing has been touched since the last reset.
    pub fn is_empty(&self) -> bool {
        self.touched.is_empty()
    }

    /// Iterates over all touched `(key, rating)` pairs.
    pub fn iter(&self) -> impl Iterator<Item = (NodeId, EdgeWeight)> + '_ {
        self.touched.iter().map(|&k| (k, self.ratings[k as usize]))
    }

    /// Returns the key with the maximum rating (ties broken towards `prefer`).
    pub fn argmax(&self, prefer: impl Fn(NodeId) -> bool) -> Option<(NodeId, EdgeWeight)> {
        let mut best: Option<(NodeId, EdgeWeight)> = None;
        for (k, v) in self.iter() {
            best = match best {
                None => Some((k, v)),
                Some((bk, bv)) => {
                    if v > bv || (v == bv && prefer(k) && !prefer(bk)) {
                        Some((k, v))
                    } else {
                        Some((bk, bv))
                    }
                }
            };
        }
        best
    }

    /// Resets all touched entries in `O(touched)`.
    pub fn clear(&mut self) {
        for &k in &self.touched {
            self.ratings[k as usize] = 0;
        }
        self.touched.clear();
    }
}

/// A single shared sparse array with atomic accumulation, used by the second phase of
/// two-phase label propagation (paper Algorithm 2, lines 8–22).
///
/// Threads add contributions with [`AtomicSparseArray::add`]; the return value tells the
/// caller whether it was the thread that raised the entry from zero, in which case it must
/// record the key in its thread-local touched list so the union of the lists contains each
/// touched key exactly once.
#[derive(Debug)]
pub struct AtomicSparseArray {
    ratings: Vec<AtomicU64>,
}

impl AtomicSparseArray {
    /// Creates a zero-initialised array for cluster IDs in `0..n`.
    pub fn new(n: usize) -> Self {
        let mut ratings = Vec::with_capacity(n);
        ratings.resize_with(n, || AtomicU64::new(0));
        Self { ratings }
    }

    /// Number of bytes of heap memory the array occupies.
    pub fn memory_bytes(&self) -> usize {
        self.ratings.len() * std::mem::size_of::<AtomicU64>()
    }

    /// Atomically adds `weight` to the rating of `key`. Returns `true` if this call
    /// raised the rating from zero (i.e. the caller is responsible for tracking `key`).
    pub fn add(&self, key: NodeId, weight: EdgeWeight) -> bool {
        let prev = self.ratings[key as usize].fetch_add(weight, Ordering::Relaxed);
        prev == 0
    }

    /// Reads the rating of `key`.
    pub fn get(&self, key: NodeId) -> EdgeWeight {
        self.ratings[key as usize].load(Ordering::Relaxed)
    }

    /// Resets the given keys to zero (called with the union of the touched lists).
    pub fn reset(&self, keys: &[NodeId]) {
        for &k in keys {
            self.ratings[k as usize].store(0, Ordering::Relaxed);
        }
    }

    /// Returns the key with the maximum rating among `keys` (ties broken towards
    /// `prefer`).
    pub fn argmax(
        &self,
        keys: &[NodeId],
        prefer: impl Fn(NodeId) -> bool,
    ) -> Option<(NodeId, EdgeWeight)> {
        let mut best: Option<(NodeId, EdgeWeight)> = None;
        for &k in keys {
            let v = self.get(k);
            best = match best {
                None => Some((k, v)),
                Some((bk, bv)) => {
                    if v > bv || (v == bv && prefer(k) && !prefer(bk)) {
                        Some((k, v))
                    } else {
                        Some((bk, bv))
                    }
                }
            };
        }
        best
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn fixed_capacity_accumulates_and_overflows() {
        let mut map = FixedCapacityHashMap::new(3);
        assert!(map.add(10, 5));
        assert!(map.add(20, 1));
        assert!(map.add(10, 2));
        assert_eq!(map.get(10), 7);
        assert_eq!(map.get(20), 1);
        assert_eq!(map.len(), 2);
        assert!(map.add(30, 1));
        // A fourth distinct key exceeds the limit.
        assert!(!map.add(40, 1));
        // Existing keys can still be updated after the overflow signal.
        assert!(map.add(30, 2));
        assert_eq!(map.get(30), 3);
        assert_eq!(map.get(40), 0);
    }

    #[test]
    fn fixed_capacity_argmax_and_clear() {
        let mut map = FixedCapacityHashMap::new(8);
        map.add(1, 5);
        map.add(2, 9);
        map.add(3, 9);
        // Tie between 2 and 3 broken towards the preferred key.
        let (k, v) = map.argmax(|k| k == 3).unwrap();
        assert_eq!((k, v), (3, 9));
        map.clear();
        assert!(map.is_empty());
        assert_eq!(map.get(2), 0);
        assert!(map.argmax(|_| false).is_none());
        assert!(map.memory_bytes() > 0);
    }

    #[test]
    fn fixed_capacity_handles_colliding_keys() {
        let mut map = FixedCapacityHashMap::new(64);
        for i in 0..64 as NodeId {
            assert!(map.add(i * 1024, 1));
        }
        assert_eq!(map.len(), 64);
        for i in 0..64 as NodeId {
            assert_eq!(map.get(i * 1024), 1);
        }
    }

    #[test]
    fn sparse_map_accumulates_and_resets() {
        let mut map = SparseRatingMap::new(100);
        map.add(5, 3);
        map.add(7, 1);
        map.add(5, 4);
        assert_eq!(map.get(5), 7);
        assert_eq!(map.len(), 2);
        assert_eq!(map.argmax(|_| false).unwrap(), (5, 7));
        map.clear();
        assert!(map.is_empty());
        assert_eq!(map.get(5), 0);
        assert!(map.memory_bytes() >= 800);
    }

    #[test]
    fn sparse_and_fixed_maps_agree() {
        let updates: [(NodeId, u64); 5] = [(3, 2), (9, 1), (3, 5), (0, 7), (9, 1)];
        let mut sparse = SparseRatingMap::new(16);
        let mut fixed = FixedCapacityHashMap::new(16);
        for &(k, w) in &updates {
            sparse.add(k, w);
            fixed.add(k, w);
        }
        let mut a: Vec<_> = sparse.iter().collect();
        let mut b: Vec<_> = fixed.iter().collect();
        a.sort_unstable();
        b.sort_unstable();
        assert_eq!(a, b);
    }

    #[test]
    fn atomic_array_tracks_first_touch() {
        let array = AtomicSparseArray::new(10);
        assert!(array.add(3, 5));
        assert!(!array.add(3, 2));
        assert!(array.add(7, 1));
        assert_eq!(array.get(3), 7);
        assert_eq!(array.argmax(&[3, 7], |_| false).unwrap(), (3, 7));
        array.reset(&[3, 7]);
        assert_eq!(array.get(3), 0);
        assert_eq!(array.get(7), 0);
        assert!(array.memory_bytes() >= 80);
    }

    #[test]
    fn atomic_array_concurrent_accumulation() {
        use std::sync::Arc;
        let array = Arc::new(AtomicSparseArray::new(4));
        let mut handles = Vec::new();
        for _ in 0..4 {
            let array = Arc::clone(&array);
            handles.push(std::thread::spawn(move || {
                let mut first_touches = 0;
                for _ in 0..1000 {
                    if array.add(2, 1) {
                        first_touches += 1;
                    }
                }
                first_touches
            }));
        }
        let total_first: usize = handles.into_iter().map(|h| h.join().unwrap()).sum();
        assert_eq!(
            total_first, 1,
            "exactly one thread observes the zero-to-nonzero transition"
        );
        assert_eq!(array.get(2), 4000);
    }
}
