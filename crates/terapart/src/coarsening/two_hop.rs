//! Two-hop clustering for irregular graphs (paper §II-B, following LaSalle et al.).
//!
//! Label propagation can stall on graphs with many low-degree vertices whose neighbours
//! all belong to full or unattractive clusters: most vertices stay singletons and the
//! coarsening makes no progress. KaMinPar counters this with *two-hop matching*: two
//! singleton clusters that share a preferred neighbouring cluster (i.e. are two hops
//! apart) are merged with each other instead. This module implements that post-processing
//! step on top of a [`Clustering`].

use graph::ids;
use graph::traits::Graph;
use graph::{NodeId, NodeWeight};

use super::lp_clustering::Clustering;
use crate::ClusterId;

/// Merges singleton clusters that share their most strongly connected neighbouring
/// cluster, as long as the merged weight respects `max_cluster_weight`.
///
/// Returns the number of merges performed. The clustering is modified in place.
pub fn two_hop_clustering(
    graph: &impl Graph,
    clustering: &mut Clustering,
    max_cluster_weight: NodeWeight,
) -> usize {
    let n = graph.n();
    if n == 0 {
        return 0;
    }
    // The label vector is shared with `Clustering::from_labels`' in-place marking
    // scheme: the top bit of the active width belongs to the sentinel helpers of
    // `graph::ids` and must never be set on a label entering (or leaving) this pass.
    debug_assert!(clustering.label.iter().all(|&l| !ids::is_marked(l)));
    let cluster_weights = clustering.cluster_weights(graph);
    // A vertex is a singleton if it is the only member of its cluster, i.e. its label is
    // itself and the cluster weight equals its own weight.
    let singleton: Vec<bool> = (0..n as NodeId)
        .map(|u| {
            clustering.label[u as usize] == u && cluster_weights[u as usize] == graph.node_weight(u)
        })
        .collect();

    // favored[c] holds a pending singleton whose strongest neighbouring cluster is `c`.
    let mut favored: std::collections::HashMap<ClusterId, NodeId> =
        std::collections::HashMap::new();
    let mut merged = 0usize;
    let mut merged_weight: Vec<NodeWeight> = cluster_weights.clone();
    for u in 0..n as NodeId {
        if !singleton[u as usize] {
            continue;
        }
        // Find the neighbouring cluster with the strongest connection to u.
        let mut best: Option<(ClusterId, u64)> = None;
        graph.for_each_neighbor(u, &mut |v, w| {
            let c = clustering.label[v as usize];
            if c == u {
                return;
            }
            best = match best {
                None => Some((c, w)),
                Some((_, bw)) if w > bw => Some((c, w)),
                other => other,
            };
        });
        let Some((target, _)) = best else { continue };
        match favored.get(&target).copied() {
            Some(partner) if partner != u => {
                let partner_cluster = clustering.label[partner as usize];
                if merged_weight[partner_cluster as usize] + graph.node_weight(u)
                    <= max_cluster_weight
                {
                    merged_weight[partner_cluster as usize] += graph.node_weight(u);
                    clustering.label[u as usize] = partner_cluster;
                    merged += 1;
                    // The partner slot stays occupied so further singletons favouring the
                    // same cluster keep joining it until the weight limit is reached.
                } else {
                    favored.insert(target, u);
                }
            }
            _ => {
                favored.insert(target, u);
            }
        }
    }
    if merged > 0 {
        *clustering = Clustering::from_labels(std::mem::take(&mut clustering.label));
    }
    merged
}

#[cfg(test)]
mod tests {
    use super::*;
    use graph::gen;

    #[test]
    fn merges_leaves_of_a_star() {
        // In a star graph, LP with a tight weight limit leaves the leaves as singletons:
        // their only neighbour is the hub, whose cluster fills up immediately. Two-hop
        // clustering should merge leaves with each other.
        let g = gen::star(101);
        let mut clustering = Clustering::singletons(g.n());
        let before = clustering.num_clusters;
        let merged = two_hop_clustering(&g, &mut clustering, 10);
        assert!(merged > 0, "expected some two-hop merges");
        assert!(clustering.num_clusters < before);
        // Cluster weights stay within the limit.
        let weights = clustering.cluster_weights(&g);
        assert!(weights.iter().all(|&w| w <= 10));
    }

    #[test]
    fn respects_weight_limit() {
        let g = gen::star(20);
        let mut clustering = Clustering::singletons(g.n());
        two_hop_clustering(&g, &mut clustering, 2);
        let weights = clustering.cluster_weights(&g);
        assert!(weights.iter().all(|&w| w <= 2));
    }

    #[test]
    fn no_merges_when_no_singletons() {
        let g = gen::path(6);
        // All vertices already share one cluster: nothing to merge.
        let mut clustering = Clustering::from_labels(vec![0, 0, 0, 0, 0, 0]);
        let merged = two_hop_clustering(&g, &mut clustering, 100);
        assert_eq!(merged, 0);
        assert_eq!(clustering.num_clusters, 1);
    }

    #[test]
    fn total_weight_is_preserved() {
        let g = gen::rhg_like(400, 6, 3.0, 3);
        let mut clustering = Clustering::singletons(g.n());
        two_hop_clustering(&g, &mut clustering, 4);
        let weights = clustering.cluster_weights(&g);
        assert_eq!(weights.iter().sum::<NodeWeight>(), g.total_node_weight());
    }

    #[test]
    fn empty_graph_is_a_noop() {
        let g = graph::CsrGraphBuilder::new(0).build();
        let mut clustering = Clustering::singletons(0);
        assert_eq!(two_hop_clustering(&g, &mut clustering, 1), 0);
    }

    #[test]
    fn isolated_vertices_stay_singletons() {
        // A path 0-1-2 plus three isolated vertices 3, 4, 5: the isolated vertices have
        // no neighbouring cluster to favour, so two-hop matching must leave them alone.
        let mut builder = graph::CsrGraphBuilder::new(6);
        builder.add_edge(0, 1, 1);
        builder.add_edge(1, 2, 1);
        let g = builder.build();
        let mut clustering = Clustering::singletons(6);
        two_hop_clustering(&g, &mut clustering, 100);
        for isolated in 3..6 {
            assert_eq!(
                clustering.label[isolated], isolated as ClusterId,
                "isolated vertex {} was merged",
                isolated
            );
        }
        let weights = clustering.cluster_weights(&g);
        assert_eq!(weights.iter().sum::<NodeWeight>(), g.total_node_weight());
    }

    #[test]
    fn low_degree_vertices_merge_only_with_same_favored_cluster() {
        // Two stars whose hubs are connected: 0-(1,2) and 3-(4,5). The leaves of hub 0
        // favour cluster 0, the leaves of hub 3 favour cluster 3; two-hop matching may
        // merge leaves within a star but never across the two stars.
        let mut builder = graph::CsrGraphBuilder::new(6);
        builder.add_edge(0, 1, 2);
        builder.add_edge(0, 2, 2);
        builder.add_edge(3, 4, 2);
        builder.add_edge(3, 5, 2);
        builder.add_edge(0, 3, 1);
        let g = builder.build();
        let mut clustering = Clustering::singletons(6);
        let merged = two_hop_clustering(&g, &mut clustering, 2);
        assert!(
            merged >= 2,
            "expected both leaf pairs to merge, got {}",
            merged
        );
        assert_eq!(
            clustering.label[1], clustering.label[2],
            "star-0 leaves should merge"
        );
        assert_eq!(
            clustering.label[4], clustering.label[5],
            "star-3 leaves should merge"
        );
        assert_ne!(
            clustering.label[1], clustering.label[4],
            "leaves of different stars favour different clusters and must not merge"
        );
        let weights = clustering.cluster_weights(&g);
        assert!(weights.iter().all(|&w| w <= 2));
    }

    #[test]
    fn merging_reduces_singletons_enough_for_coarsening_to_progress() {
        // The coarsening driver invokes two-hop matching exactly when LP leaves too many
        // singletons; on a star the post-merge cluster count must fall below the shrink
        // threshold that triggered it.
        let g = gen::star(1_001);
        let mut clustering = Clustering::singletons(g.n());
        two_hop_clustering(&g, &mut clustering, 8);
        assert!(
            (clustering.num_clusters as f64) < 0.6 * g.n() as f64,
            "two-hop left {} of {} clusters",
            clustering.num_clusters,
            g.n()
        );
    }
}
