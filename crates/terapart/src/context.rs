//! Partitioner configuration ("context" in KaMinPar terminology).
//!
//! The experiments of the paper enable the TeraPart optimizations one after another on
//! top of the KaMinPar baseline (Figures 1, 4 and 6). [`PartitionerConfig`] exposes each
//! optimization as an independent switch plus named presets for the configurations the
//! paper evaluates:
//!
//! * [`PartitionerConfig::kaminpar`] — the baseline: per-thread rating maps, buffered
//!   contraction, uncompressed input, label propagation refinement.
//! * [`PartitionerConfig::kaminpar_two_phase_lp`] — + two-phase label propagation.
//! * [`PartitionerConfig::kaminpar_compressed`] — + graph compression.
//! * [`PartitionerConfig::terapart`] — + one-pass contraction (the full TeraPart).
//! * [`PartitionerConfig::terapart_fm`] — TeraPart with parallel FM refinement and the
//!   space-efficient gain table (TeraPart-FM in the paper).

/// How the label propagation clustering allocates its rating maps (paper §IV-A).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum LabelPropagationMode {
    /// One `O(n)` sparse-array rating map per thread — `O(n·p)` auxiliary memory.
    /// This is the original KaMinPar scheme.
    PerThreadRatingMaps,
    /// Two-phase label propagation: fixed-capacity per-thread hash tables in phase one,
    /// a single shared atomic sparse array for bumped vertices in phase two —
    /// `O(n + p·T_bump)` auxiliary memory.
    TwoPhase,
}

/// Which contraction algorithm builds the coarse graph (paper §IV-B).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ContractionAlgorithm {
    /// Aggregate coarse edges into per-cluster buffers, then copy them into the CSR
    /// arrays once all degrees are known (the original KaMinPar scheme; stores the
    /// coarse graph twice at its peak).
    Buffered,
    /// One-pass contraction: append coarse neighbourhoods directly to an over-reserved
    /// edge array using the atomic dual counter, then remap vertex IDs.
    OnePass,
}

/// Gain-cache flavour used by FM refinement (paper §V / Figure 7).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum GainTableKind {
    /// No gain table: gains are recomputed from scratch whenever they are needed.
    None,
    /// The standard dense table with `k` entries per vertex (`O(nk)` memory).
    Dense,
    /// The space-efficient table: dense rows only for vertices with `deg(v) > k`, tiny
    /// linear-probing hash tables of capacity `Θ(deg(v))` otherwise (`O(m)` memory).
    Sparse,
}

/// Refinement algorithm run on every level during uncoarsening.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum RefinementAlgorithm {
    /// Size-constrained label propagation refinement (KaMinPar default, TeraPart-LP).
    LabelPropagation,
    /// Label propagation followed by parallel batched FM refinement (TeraPart-FM):
    /// positive-gain boundary moves collected in parallel and applied in gain order.
    FmWithLabelPropagation,
    /// Label propagation followed by priority-queue k-way FM
    /// ([`kway_fm`](crate::refinement::kway_fm)): the classic FM discipline over all
    /// `k` blocks with hill climbing and rollback to the best move prefix. Higher
    /// quality than the batched scheme at some extra cost; deterministic at any
    /// thread count.
    KWayFmWithLabelPropagation,
}

/// Edge rating used by label propagation clustering to score candidate clusters
/// (advanced coarsening, Safro et al.).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum EdgeRating {
    /// Plain summed edge weight (the KaMinPar/TeraPart default).
    Weight,
    /// Degree-scaled rating `1 + (ω(u,v) << 8) / (1 + deg(u) + deg(v))`: an integer
    /// stand-in for the algebraic-distance-style ratings of Safro et al.'s advanced
    /// coarsening schemes. Edges between low-degree vertices are preferred over hub
    /// edges, which keeps hubs from absorbing whole neighbourhoods on power-law
    /// graphs and preserves cluster structure for the refinement to exploit.
    DegreeScaled,
}

/// Settings of the coarsening stage.
#[derive(Debug, Clone, PartialEq)]
pub struct CoarseningConfig {
    /// Rating-map strategy for label propagation clustering.
    pub lp_mode: LabelPropagationMode,
    /// Contraction algorithm.
    pub contraction: ContractionAlgorithm,
    /// Number of label propagation rounds per level (the paper performs 5).
    pub lp_rounds: usize,
    /// Bump threshold `T_bump`: vertices whose neighbourhood touches at least this many
    /// distinct clusters are deferred to the second phase. The paper uses 10 000; the
    /// default here is lower so the second phase is exercised at laptop scale.
    pub bump_threshold: usize,
    /// Coarsening stops once the graph has at most `contraction_limit · k` vertices.
    pub contraction_limit: usize,
    /// Coarsening also stops when a level shrinks by less than this factor.
    pub min_shrink_factor: f64,
    /// Enable two-hop cluster matching for irregular graphs that barely shrink.
    pub two_hop_clustering: bool,
    /// Maximum cluster weight as a fraction of the average block weight. KaMinPar uses
    /// `ε`-dependent limits; a constant fraction reproduces the behaviour at small scale.
    pub max_cluster_weight_fraction: f64,
    /// Frontier-driven rounds: after the full first round, only vertices whose
    /// neighbourhood changed in the previous round are revisited (active-set
    /// scheduling). Disable to reproduce the original full-sweep rounds.
    pub lp_frontier: bool,
    /// Edge rating used when scoring candidate clusters.
    pub edge_rating: EdgeRating,
}

impl Default for CoarseningConfig {
    fn default() -> Self {
        Self {
            lp_mode: LabelPropagationMode::TwoPhase,
            contraction: ContractionAlgorithm::OnePass,
            lp_rounds: 5,
            bump_threshold: 256,
            contraction_limit: 40,
            min_shrink_factor: 0.95,
            two_hop_clustering: true,
            max_cluster_weight_fraction: 1.0,
            lp_frontier: true,
            edge_rating: EdgeRating::Weight,
        }
    }
}

/// Settings of the initial partitioning stage (run on the coarsest graph).
#[derive(Debug, Clone, PartialEq)]
pub struct InitialPartitioningConfig {
    /// Number of independent attempts of the greedy-growing + FM portfolio per
    /// bisection. Each attempt derives its RNG stream from the bisection's seed and the
    /// attempt index; the winner is the best balanced result, ties broken by lower cut
    /// and then lower attempt index, so the outcome is independent of the order in
    /// which parallel attempts finish.
    pub attempts: usize,
    /// Number of 2-way FM passes applied to each bisection attempt (each pass stops
    /// early once it cannot improve the cut).
    pub fm_passes: usize,
    /// Base seed used when the stage is configured standalone (e.g. by experiment
    /// binaries). Inside the multilevel pipeline the driver passes
    /// [`PartitionerConfig::seed`] instead, so one seed controls the whole run.
    pub seed: u64,
    /// Run the two child recursions of each bisection and the independent portfolio
    /// attempts in parallel (task parallelism via the rayon shim's `join`). Results are
    /// bit-identical for a fixed seed at any thread count, because every subtree's RNG
    /// stream is derived from the seed path rather than from scheduling.
    pub parallel: bool,
    /// Minimum subgraph size (in vertices) for forking a parallel task; smaller
    /// bisections and their portfolios run sequentially on the current thread, since
    /// task-spawn overhead would dwarf the work. Has no effect on results.
    pub parallel_grain: usize,
}

impl Default for InitialPartitioningConfig {
    fn default() -> Self {
        Self {
            attempts: 4,
            fm_passes: 3,
            seed: 1,
            parallel: true,
            parallel_grain: 1024,
        }
    }
}

/// Settings of the refinement stage (run on every level during uncoarsening).
#[derive(Debug, Clone, PartialEq)]
pub struct RefinementConfig {
    /// Which refinement algorithm to run.
    pub algorithm: RefinementAlgorithm,
    /// Gain table used by FM refinement.
    pub gain_table: GainTableKind,
    /// Number of label propagation refinement rounds per level.
    pub lp_rounds: usize,
    /// Number of FM passes per level.
    pub fm_passes: usize,
    /// FM only inspects moves for boundary vertices; this caps the fraction of vertices
    /// processed per pass as a safeguard on degenerate instances.
    pub fm_fraction: f64,
    /// Frontier-driven LP refinement rounds: after the full first round, only vertices
    /// whose neighbourhood changed are revisited. Disable for full-sweep rounds.
    pub lp_frontier: bool,
    /// Priority-queue k-way FM only: how many consecutive moves without a new best
    /// prefix a pass tolerates before it stops hill climbing (the rolled-back tail is
    /// bounded by this).
    pub fm_adverse_limit: usize,
}

impl Default for RefinementConfig {
    fn default() -> Self {
        Self {
            algorithm: RefinementAlgorithm::LabelPropagation,
            gain_table: GainTableKind::Sparse,
            lp_rounds: 5,
            fm_passes: 2,
            fm_fraction: 1.0,
            lp_frontier: true,
            fm_adverse_limit: 64,
        }
    }
}

/// Observability settings: whether a run records spans/counters, where (if anywhere)
/// the Chrome trace goes, and an optional live progress callback.
///
/// All of this is *read-only* with respect to the partitioning algorithms: a fixed-seed
/// run produces a bit-identical partition whether recording is off, on, or exporting a
/// trace, at any thread count (asserted by `tests/observability.rs`).
#[derive(Debug, Clone, PartialEq)]
pub struct ObsConfig {
    /// Record spans and counters into an [`obs::Recorder`] and attach the resulting
    /// [`obs::RunReport`] to the [`PartitionResult`](crate::partitioner::PartitionResult).
    /// When `false` (the default) the pipeline runs against [`obs::NoopSink`], which
    /// allocates nothing and compiles down to a branch on a `None`.
    pub record: bool,
    /// Also export the recorded spans as a Chrome trace-event JSON file (implies
    /// `record`). Load it at `chrome://tracing` or <https://ui.perfetto.dev>.
    pub trace_path: Option<std::path::PathBuf>,
    /// Live progress callback invoked at coarsening level transitions, after initial
    /// partitioning, and after each refined level (with the current cut and balance).
    pub progress: obs::ProgressHook,
}

impl Default for ObsConfig {
    fn default() -> Self {
        Self {
            record: false,
            trace_path: None,
            progress: obs::ProgressHook::none(),
        }
    }
}

impl ObsConfig {
    /// `true` if the run needs a recording sink (an explicit request or a trace export).
    pub fn wants_recording(&self) -> bool {
        self.record || self.trace_path.is_some()
    }
}

/// Settings of the on-disk (`.tpg`-backed) partitioning entry point
/// [`partition_ondisk`](crate::partitioner::partition_ondisk): the page-cache geometry
/// the [`graph::PagedGraph`] is opened with. This is exactly
/// [`graph::PagedGraphOptions`] (page size, total budget, shard count); the alias
/// keeps the partitioner-facing name without a second struct that could drift.
pub type OnDiskConfig = graph::PagedGraphOptions;

/// Complete configuration of a partitioning run.
#[derive(Debug, Clone, PartialEq)]
pub struct PartitionerConfig {
    /// Number of blocks `k`.
    pub k: usize,
    /// Allowed imbalance ε (the paper uses 3%).
    pub epsilon: f64,
    /// Number of worker threads (`p`).
    pub num_threads: usize,
    /// Random seed controlling vertex visit orders and initial partitioning.
    pub seed: u64,
    /// Partition the compressed representation instead of the uncompressed CSR.
    pub use_compression: bool,
    /// Coarsening settings.
    pub coarsening: CoarseningConfig,
    /// Initial partitioning settings.
    pub initial: InitialPartitioningConfig,
    /// Refinement settings.
    pub refinement: RefinementConfig,
    /// Page-cache settings of the on-disk entry point (ignored by in-memory runs).
    pub ondisk: OnDiskConfig,
    /// Observability settings (span recording, trace export, progress callback).
    pub obs: ObsConfig,
}

impl PartitionerConfig {
    /// The KaMinPar baseline configuration (no TeraPart optimizations). Frontier-driven
    /// LP rounds are disabled too: the baseline models the original full-sweep
    /// behaviour, so the experiment ladder isolates each optimization's contribution.
    pub fn kaminpar(k: usize) -> Self {
        Self {
            k,
            epsilon: 0.03,
            num_threads: default_threads(),
            seed: 1,
            use_compression: false,
            coarsening: CoarseningConfig {
                lp_mode: LabelPropagationMode::PerThreadRatingMaps,
                contraction: ContractionAlgorithm::Buffered,
                lp_frontier: false,
                ..CoarseningConfig::default()
            },
            initial: InitialPartitioningConfig::default(),
            refinement: RefinementConfig {
                lp_frontier: false,
                ..RefinementConfig::default()
            },
            ondisk: OnDiskConfig::default(),
            obs: ObsConfig::default(),
        }
    }

    /// KaMinPar + two-phase label propagation (first optimization step in Fig. 1/4/6).
    pub fn kaminpar_two_phase_lp(k: usize) -> Self {
        let mut config = Self::kaminpar(k);
        config.coarsening.lp_mode = LabelPropagationMode::TwoPhase;
        config
    }

    /// KaMinPar + two-phase LP + graph compression (second optimization step).
    pub fn kaminpar_compressed(k: usize) -> Self {
        let mut config = Self::kaminpar_two_phase_lp(k);
        config.use_compression = true;
        config
    }

    /// The full TeraPart configuration: two-phase LP, graph compression, one-pass
    /// contraction and frontier-driven LP rounds, with label propagation refinement
    /// (TeraPart-LP in the paper).
    pub fn terapart(k: usize) -> Self {
        let mut config = Self::kaminpar_compressed(k);
        config.coarsening.contraction = ContractionAlgorithm::OnePass;
        config.coarsening.lp_frontier = true;
        config.refinement.lp_frontier = true;
        config
    }

    /// TeraPart with parallel FM refinement and the space-efficient gain table
    /// (TeraPart-FM in the paper).
    pub fn terapart_fm(k: usize) -> Self {
        let mut config = Self::terapart(k);
        config.refinement.algorithm = RefinementAlgorithm::FmWithLabelPropagation;
        config.refinement.gain_table = GainTableKind::Sparse;
        config
    }

    /// The configuration of a quality [`Preset`]. See the preset docs for what each
    /// level enables.
    pub fn preset(preset: Preset, k: usize) -> Self {
        match preset {
            Preset::Fast => Self::terapart(k),
            Preset::Default => {
                let mut config = Self::terapart(k);
                config.refinement.algorithm = RefinementAlgorithm::KWayFmWithLabelPropagation;
                config.refinement.gain_table = GainTableKind::Sparse;
                config
            }
            Preset::Strong => {
                let mut config = Self::preset(Preset::Default, k);
                // Full-sweep LP rounds: revisit every vertex each round instead of
                // only the active frontier.
                config.coarsening.lp_frontier = false;
                config.refinement.lp_frontier = false;
                // Advanced-coarsening edge rating (Safro et al.).
                config.coarsening.edge_rating = EdgeRating::DegreeScaled;
                // More local search everywhere.
                config.coarsening.lp_rounds = 8;
                config.refinement.lp_rounds = 8;
                config.refinement.fm_passes = 4;
                config.refinement.fm_adverse_limit = 192;
                config.initial.attempts = 8;
                config.initial.fm_passes = 5;
                config
            }
        }
    }

    /// Sets the number of threads, returning the modified configuration.
    pub fn with_threads(mut self, threads: usize) -> Self {
        self.num_threads = threads.max(1);
        self
    }

    /// Sets the random seed, returning the modified configuration.
    pub fn with_seed(mut self, seed: u64) -> Self {
        self.seed = seed;
        self
    }

    /// Sets the imbalance parameter, returning the modified configuration.
    pub fn with_epsilon(mut self, epsilon: f64) -> Self {
        self.epsilon = epsilon;
        self
    }

    /// Sets the gain-table kind used by FM refinement.
    pub fn with_gain_table(mut self, kind: GainTableKind) -> Self {
        self.refinement.gain_table = kind;
        self
    }

    /// Sets the page-cache budget (bytes) of the on-disk entry point.
    pub fn with_page_budget(mut self, bytes: usize) -> Self {
        self.ondisk.budget_bytes = bytes;
        self
    }

    /// Enables or disables LP-aware page readahead ([`OnDiskConfig::prefetch`]) of the
    /// on-disk entry point: the label propagation rounds hand their upcoming visit
    /// order to the page cache, which faults the covered pages with batched positional
    /// reads in the background. Results are bit-identical either way; only the
    /// cold-sweep hit rate (and wall-clock) changes.
    pub fn with_prefetch(mut self, prefetch: bool) -> Self {
        self.ondisk.prefetch = prefetch;
        self
    }

    /// Selects the store backend ([`OnDiskConfig::backend`]) of the on-disk entry
    /// point: [`Paged`](graph::store::OnDiskBackend::Paged) (default) decodes through
    /// the budgeted page cache, [`Mmap`](graph::store::OnDiskBackend::Mmap) decodes
    /// zero-copy out of a verified read-only memory mapping — the fits-in-RAM fast
    /// path. Fixed-seed results are bit-identical across backends.
    pub fn with_store_backend(mut self, backend: graph::store::OnDiskBackend) -> Self {
        self.ondisk.backend = backend;
        self
    }

    /// Sets the transient-read retry policy ([`OnDiskConfig::retry`]) of the on-disk
    /// entry point: how many times (and with what backoff) a failed page read is
    /// repeated before the run gives up with a structured error.
    pub fn with_retry(mut self, retry: graph::store::RetryPolicy) -> Self {
        self.ondisk.retry = retry;
        self
    }

    /// Enables span/counter recording: the run attaches an [`obs::RunReport`] (span
    /// tree, phase wall times, unified counters) to its
    /// [`PartitionResult`](crate::partitioner::PartitionResult). Results are
    /// bit-identical with recording on or off; the overhead is one timestamp pair and
    /// one mutex push per phase, nothing per vertex or edge.
    pub fn with_run_report(mut self, record: bool) -> Self {
        self.obs.record = record;
        self
    }

    /// Exports the recorded spans as Chrome trace-event JSON to `path` (implies
    /// [`ObsConfig::record`]). Load the file at `chrome://tracing` or
    /// <https://ui.perfetto.dev>.
    pub fn with_trace_path(mut self, path: impl Into<std::path::PathBuf>) -> Self {
        self.obs.trace_path = Some(path.into());
        self
    }

    /// Installs a live progress callback. The hook observes coarsening level
    /// transitions, the initial partition, and each refined level with the current
    /// cut and imbalance; it never influences the computation.
    pub fn with_progress(
        mut self,
        hook: impl Fn(&obs::ProgressEvent) + Send + Sync + 'static,
    ) -> Self {
        self.obs.progress = obs::ProgressHook::new(hook);
        self
    }
}

/// Quality presets: named points on the cut-vs-time trade-off, built on top of the
/// paper's optimization ladder. `BENCH_quality.json` (written by the `bench_quality`
/// binary) records the Pareto sweep across these presets and the instance families.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Preset {
    /// Today's frontier-driven TeraPart-LP pipeline: frontier LP clustering and
    /// refinement, label propagation refinement only. Fastest, coarsest cuts.
    Fast,
    /// Frontier LP plus priority-queue k-way FM refinement with the space-efficient
    /// gain table. The recommended balance of quality and speed.
    Default,
    /// Full-sweep LP rounds, the degree-scaled advanced-coarsening edge rating
    /// ([`EdgeRating::DegreeScaled`], per Safro et al.), more LP rounds, more k-way FM
    /// passes with a longer hill-climbing budget and a larger initial-partitioning
    /// portfolio. Best cuts, slowest.
    Strong,
}

impl Preset {
    /// Every preset, fastest first — the order bench sweeps report.
    pub const ALL: [Preset; 3] = [Preset::Fast, Preset::Default, Preset::Strong];

    /// The lowercase name used in CLI flags, bench reports and golden-cut tables.
    pub fn name(self) -> &'static str {
        match self {
            Preset::Fast => "fast",
            Preset::Default => "default",
            Preset::Strong => "strong",
        }
    }

    /// Parses [`Preset::name`] back. Returns `None` for unknown names.
    pub fn from_name(name: &str) -> Option<Self> {
        Preset::ALL.into_iter().find(|p| p.name() == name)
    }
}

/// Default thread count: all available parallelism, matching the paper's "use all cores
/// unless stated otherwise".
pub fn default_threads() -> usize {
    std::thread::available_parallelism()
        .map(|p| p.get())
        .unwrap_or(1)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn presets_enable_optimizations_incrementally() {
        let base = PartitionerConfig::kaminpar(16);
        assert_eq!(
            base.coarsening.lp_mode,
            LabelPropagationMode::PerThreadRatingMaps
        );
        assert_eq!(base.coarsening.contraction, ContractionAlgorithm::Buffered);
        assert!(!base.use_compression);
        assert!(!base.coarsening.lp_frontier && !base.refinement.lp_frontier);

        let two_phase = PartitionerConfig::kaminpar_two_phase_lp(16);
        assert_eq!(two_phase.coarsening.lp_mode, LabelPropagationMode::TwoPhase);
        assert_eq!(
            two_phase.coarsening.contraction,
            ContractionAlgorithm::Buffered
        );

        let compressed = PartitionerConfig::kaminpar_compressed(16);
        assert!(compressed.use_compression);

        let terapart = PartitionerConfig::terapart(16);
        assert_eq!(
            terapart.coarsening.contraction,
            ContractionAlgorithm::OnePass
        );
        assert!(terapart.coarsening.lp_frontier && terapart.refinement.lp_frontier);
        assert_eq!(
            terapart.refinement.algorithm,
            RefinementAlgorithm::LabelPropagation
        );

        let fm = PartitionerConfig::terapart_fm(16);
        assert_eq!(
            fm.refinement.algorithm,
            RefinementAlgorithm::FmWithLabelPropagation
        );
        assert_eq!(fm.refinement.gain_table, GainTableKind::Sparse);
    }

    #[test]
    fn builder_style_setters() {
        let config = PartitionerConfig::terapart(4)
            .with_threads(2)
            .with_seed(99)
            .with_epsilon(0.1)
            .with_gain_table(GainTableKind::Dense);
        assert_eq!(config.num_threads, 2);
        assert_eq!(config.seed, 99);
        assert!((config.epsilon - 0.1).abs() < 1e-12);
        assert_eq!(config.refinement.gain_table, GainTableKind::Dense);
    }

    #[test]
    fn threads_are_clamped_to_one() {
        let config = PartitionerConfig::terapart(4).with_threads(0);
        assert_eq!(config.num_threads, 1);
        assert!(default_threads() >= 1);
    }

    #[test]
    fn quality_presets_trade_speed_for_quality() {
        let fast = PartitionerConfig::preset(Preset::Fast, 8);
        assert_eq!(fast, PartitionerConfig::terapart(8));
        assert_eq!(
            fast.refinement.algorithm,
            RefinementAlgorithm::LabelPropagation
        );

        let default = PartitionerConfig::preset(Preset::Default, 8);
        assert_eq!(
            default.refinement.algorithm,
            RefinementAlgorithm::KWayFmWithLabelPropagation
        );
        assert_eq!(default.refinement.gain_table, GainTableKind::Sparse);
        assert!(default.coarsening.lp_frontier, "default keeps frontier LP");

        let strong = PartitionerConfig::preset(Preset::Strong, 8);
        assert!(!strong.coarsening.lp_frontier && !strong.refinement.lp_frontier);
        assert_eq!(strong.coarsening.edge_rating, EdgeRating::DegreeScaled);
        assert!(strong.refinement.fm_passes > default.refinement.fm_passes);
        assert!(strong.initial.attempts > default.initial.attempts);
    }

    #[test]
    fn preset_names_round_trip() {
        for preset in Preset::ALL {
            assert_eq!(Preset::from_name(preset.name()), Some(preset));
        }
        assert_eq!(Preset::from_name("fastest"), None);
        assert_eq!(Preset::ALL.map(|p| p.name()), ["fast", "default", "strong"]);
    }

    #[test]
    fn observability_builders() {
        let config = PartitionerConfig::terapart(4);
        assert!(!config.obs.wants_recording());
        assert!(!config.obs.progress.is_set());

        let recording = config.clone().with_run_report(true);
        assert!(recording.obs.record && recording.obs.wants_recording());

        let traced = config.clone().with_trace_path("/tmp/run_trace.json");
        assert!(!traced.obs.record, "trace export does not flip `record`");
        assert!(traced.obs.wants_recording(), "but it implies recording");

        let hooked = config.with_progress(|_event| {});
        assert!(hooked.obs.progress.is_set());
    }

    #[test]
    fn paper_defaults() {
        let config = PartitionerConfig::terapart(8);
        assert!((config.epsilon - 0.03).abs() < 1e-12);
        assert_eq!(config.coarsening.lp_rounds, 5);
    }
}
