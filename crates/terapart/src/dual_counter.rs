//! The atomic dual counter used by one-pass contraction (paper §IV-B2).
//!
//! One-pass contraction maintains two counters that must be updated together in one
//! transaction: `d`, the number of coarse half-edges already appended to the coarse edge
//! array, and `s`, the number of coarse vertices already processed. The paper packs both
//! into a 128-bit word and updates them with the double-width compare-and-swap
//! instruction (CMPXCHG16B).
//!
//! Stable Rust has no portable 128-bit atomic, so this reproduction packs the pair into a
//! single `AtomicU64`: `d` occupies the low [`EDGE_BITS`] bits and `s` the remaining high
//! bits. At the scales this repository handles (`2m' < 2^40`, `n' < 2^24`) the packing is
//! lossless; the packing limits are asserted at run time so a violation fails loudly
//! rather than corrupting the contraction. The update protocol (CAS loop, capturing the
//! *previous* values `d_prev`/`s_prev`, batching several neighbourhoods per transaction)
//! is identical to the paper's.

use std::sync::atomic::{AtomicU64, Ordering};

/// Number of low bits reserved for the edge counter `d`.
pub const EDGE_BITS: u32 = 40;

/// Maximum representable edge count (exclusive).
pub const MAX_EDGES: u64 = 1 << EDGE_BITS;

/// Maximum representable vertex count (exclusive).
pub const MAX_VERTICES: u64 = 1 << (64 - EDGE_BITS);

/// A pair of counters `(d, s)` updated atomically in a single transaction.
#[derive(Debug, Default)]
pub struct DualCounter {
    packed: AtomicU64,
}

impl DualCounter {
    /// Creates a counter with `d = 0` and `s = 0`.
    pub const fn new() -> Self {
        Self {
            packed: AtomicU64::new(0),
        }
    }

    /// Atomically adds `edges` to `d` and `vertices` to `s`, returning the values of
    /// `(d, s)` immediately *before* the transaction — the `d_prev`/`s_prev` of the
    /// paper, which give the first edge position and first coarse vertex ID of the batch.
    pub fn fetch_add(&self, edges: u64, vertices: u64) -> (u64, u64) {
        assert!(
            edges < MAX_EDGES,
            "edge increment {} exceeds packing limit",
            edges
        );
        assert!(
            vertices < MAX_VERTICES,
            "vertex increment {} exceeds packing limit",
            vertices
        );
        let mut current = self.packed.load(Ordering::Relaxed);
        loop {
            let (d, s) = Self::unpack(current);
            assert!(
                d + edges < MAX_EDGES,
                "edge counter overflow: {} + {}",
                d,
                edges
            );
            assert!(
                s + vertices < MAX_VERTICES,
                "vertex counter overflow: {} + {}",
                s,
                vertices
            );
            let next = Self::pack(d + edges, s + vertices);
            match self.packed.compare_exchange_weak(
                current,
                next,
                Ordering::AcqRel,
                Ordering::Relaxed,
            ) {
                Ok(_) => return (d, s),
                Err(actual) => current = actual,
            }
        }
    }

    /// Returns the current `(d, s)` values.
    pub fn load(&self) -> (u64, u64) {
        Self::unpack(self.packed.load(Ordering::Acquire))
    }

    /// Packs `(d, s)` into one 64-bit word.
    #[inline]
    pub fn pack(d: u64, s: u64) -> u64 {
        debug_assert!(d < MAX_EDGES);
        debug_assert!(s < MAX_VERTICES);
        (s << EDGE_BITS) | d
    }

    /// Splits a packed word back into `(d, s)`.
    #[inline]
    pub fn unpack(packed: u64) -> (u64, u64) {
        (packed & (MAX_EDGES - 1), packed >> EDGE_BITS)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::Arc;
    use std::thread;

    #[test]
    fn pack_unpack_round_trip() {
        for &(d, s) in &[
            (0u64, 0u64),
            (1, 1),
            (MAX_EDGES - 1, 0),
            (0, MAX_VERTICES - 1),
            (123_456_789, 54_321),
        ] {
            assert_eq!(DualCounter::unpack(DualCounter::pack(d, s)), (d, s));
        }
    }

    #[test]
    fn fetch_add_returns_previous_values() {
        let counter = DualCounter::new();
        assert_eq!(counter.fetch_add(10, 2), (0, 0));
        assert_eq!(counter.fetch_add(5, 1), (10, 2));
        assert_eq!(counter.load(), (15, 3));
    }

    #[test]
    fn zero_increments_are_allowed() {
        let counter = DualCounter::new();
        counter.fetch_add(7, 0);
        assert_eq!(counter.load(), (7, 0));
        counter.fetch_add(0, 3);
        assert_eq!(counter.load(), (7, 3));
    }

    #[test]
    #[should_panic(expected = "packing limit")]
    fn oversized_increment_panics() {
        let counter = DualCounter::new();
        counter.fetch_add(MAX_EDGES, 0);
    }

    #[test]
    fn concurrent_increments_are_exact_and_disjoint() {
        let counter = Arc::new(DualCounter::new());
        let threads = 4;
        let per_thread = 5_000;
        let mut handles = Vec::new();
        for _ in 0..threads {
            let counter = Arc::clone(&counter);
            handles.push(thread::spawn(move || {
                let mut ranges = Vec::with_capacity(per_thread);
                for i in 0..per_thread {
                    let edges = (i % 7 + 1) as u64;
                    let (d_prev, s_prev) = counter.fetch_add(edges, 1);
                    ranges.push((d_prev, edges, s_prev));
                }
                ranges
            }));
        }
        let mut all: Vec<(u64, u64, u64)> = handles
            .into_iter()
            .flat_map(|h| h.join().unwrap())
            .collect();
        // Every vertex ID must be unique, and the edge ranges must tile [0, d_total).
        let (d_total, s_total) = counter.load();
        assert_eq!(s_total as usize, threads * per_thread);
        let mut vertex_ids: Vec<u64> = all.iter().map(|&(_, _, s)| s).collect();
        vertex_ids.sort_unstable();
        vertex_ids.dedup();
        assert_eq!(vertex_ids.len(), threads * per_thread);
        all.sort_unstable_by_key(|&(d, _, _)| d);
        let mut expected_start = 0;
        for &(d_prev, edges, _) in &all {
            assert_eq!(d_prev, expected_start, "edge ranges must tile without gaps");
            expected_start += edges;
        }
        assert_eq!(expected_start, d_total);
    }
}
