//! The reentrant partitioning core: [`PartitionEngine`] + [`PartitionRequest`].
//!
//! The `partition*` free functions in [`crate::partitioner`] are one-shot: each call
//! builds its scratch arena from nothing, opens its own store, and tears everything
//! down on return. A service partitioning many graphs (or the same graph many times —
//! seed portfolios, k sweeps, quality ladders) pays that setup per request, and two
//! concurrent requests against the same `.tpg` container open (and memtrack-charge) it
//! twice.
//!
//! The engine is the long-lived object those callers hold instead:
//!
//! * an open-store registry ([`graph::StoreRegistry`]) deduplicates container opens by
//!   `(path, options)` — N concurrent requests against one graph share one page cache
//!   or mapping and one memory charge;
//! * a [`ScratchPool`] checks out [`HierarchyScratch`] arenas per request and parks
//!   them again afterwards, so a warmed engine partitions without re-growing the
//!   auxiliary buffers, and N concurrent requests peak at `max(simultaneous)` arenas
//!   rather than N;
//! * each request reads the store through its own [`graph::StoreSession`], which
//!   carries the poison protocol: an unrecoverable storage fault fails *that* request
//!   with a structured [`PartitionError`] and leaves co-tenant sessions, the store and
//!   the registry healthy.
//!
//! Engine-level knobs (thread default, store geometry, compression policy) live in
//! [`EngineConfig`]; request-level knobs (k, epsilon, seed, refinement settings,
//! observability, memory budget) live in [`PartitionRequest`]. A request resolves
//! against the engine's defaults into exactly the [`PartitionerConfig`] the free
//! functions would have used, so fixed-seed results are bit-identical across both
//! APIs — and across sequential vs. concurrent execution, since sessions share no
//! mutable algorithmic state.

use std::ops::{Deref, DerefMut};
use std::path::Path;
use std::sync::atomic::{AtomicUsize, Ordering};

use graph::builder::compress_csr_parallel;
use graph::csr::CsrGraph;
use graph::io::IoError;
use graph::store::{
    CacheStatsSnapshot, PagedGraph, RetryPolicy, StoreHandle, StoreRegistry, StoreSession,
};
use graph::traits::Graph;
use graph::CompressionConfig;
use memtrack::{MemoryScope, PhaseTracker};
use parking_lot::Mutex;

use crate::context::{
    default_threads, CoarseningConfig, InitialPartitioningConfig, ObsConfig, OnDiskConfig,
    PartitionerConfig, RefinementConfig,
};
use crate::error::PartitionError;
use crate::partitioner::{obs_phase, partition_with_session, ObsSession, PartitionResult};
use crate::scratch::HierarchyScratch;

/// Engine-level configuration: the knobs that outlive any single request because they
/// describe the *environment* (store geometry, default parallelism, input
/// representation policy) rather than one partitioning problem.
#[derive(Debug, Clone, PartialEq)]
pub struct EngineConfig {
    /// Store geometry for path-based requests: backend, page size, cache budget,
    /// prefetch and retry policy. Also the registry key — requests resolved with
    /// different on-disk options deliberately do not share a store.
    pub ondisk: OnDiskConfig,
    /// Default worker-thread count for requests that do not override it.
    pub num_threads: usize,
    /// Whether CSR inputs are compressed before partitioning (the paper's
    /// configuration-ladder switch); requests inherit this policy.
    pub use_compression: bool,
}

impl Default for EngineConfig {
    fn default() -> Self {
        Self {
            ondisk: OnDiskConfig::default(),
            num_threads: default_threads(),
            use_compression: true,
        }
    }
}

impl EngineConfig {
    /// Extracts the engine-level knobs from a flat [`PartitionerConfig`] — the
    /// compatibility path the free `partition*` functions use.
    pub fn from_partitioner(config: &PartitionerConfig) -> Self {
        Self {
            ondisk: config.ondisk.clone(),
            num_threads: config.num_threads,
            use_compression: config.use_compression,
        }
    }
}

/// One partitioning problem posed to a [`PartitionEngine`]: the request-level half of
/// the former [`PartitionerConfig`]. Everything here scopes to a single run; engine
/// defaults fill in whatever a request does not override.
#[derive(Debug, Clone)]
pub struct PartitionRequest {
    /// Number of blocks.
    pub k: usize,
    /// Balance constraint ε.
    pub epsilon: f64,
    /// Seed of the run's deterministic RNG streams.
    pub seed: u64,
    /// Per-request thread-count override; `None` inherits the engine default.
    pub num_threads: Option<usize>,
    /// Per-request retry-policy override for path-based requests. Changing the retry
    /// policy changes the store key, so two requests differing here do not share an
    /// open store (they would behave differently under faults).
    pub retry: Option<RetryPolicy>,
    /// Coarsening settings of this request.
    pub coarsening: CoarseningConfig,
    /// Initial-partitioning settings of this request.
    pub initial: InitialPartitioningConfig,
    /// Refinement settings of this request.
    pub refinement: RefinementConfig,
    /// Observability: run-report recording, trace export, progress callback.
    pub obs: ObsConfig,
    /// Soft cap on the bytes the engine's parked scratch arenas may keep alive after
    /// this request completes; the engine trims the pool (largest arena first) to fit.
    /// `None` keeps every arena warm.
    pub memory_budget: Option<usize>,
}

impl PartitionRequest {
    /// A request for `k` blocks with the TeraPart defaults (mirrors
    /// [`PartitionerConfig::terapart`] minus the engine-level knobs).
    pub fn new(k: usize) -> Self {
        Self::from_config(&PartitionerConfig::terapart(k))
    }

    /// Extracts the request-level half of a flat [`PartitionerConfig`]. The resulting
    /// request pins the config's thread count (rather than inheriting the engine
    /// default), so resolving it reproduces the config exactly.
    pub fn from_config(config: &PartitionerConfig) -> Self {
        Self {
            k: config.k,
            epsilon: config.epsilon,
            seed: config.seed,
            num_threads: Some(config.num_threads),
            retry: None,
            coarsening: config.coarsening.clone(),
            initial: config.initial.clone(),
            refinement: config.refinement.clone(),
            obs: config.obs.clone(),
            memory_budget: None,
        }
    }

    /// Sets the seed.
    pub fn with_seed(mut self, seed: u64) -> Self {
        self.seed = seed;
        self
    }

    /// Sets the balance constraint.
    pub fn with_epsilon(mut self, epsilon: f64) -> Self {
        self.epsilon = epsilon;
        self
    }

    /// Overrides the engine's default thread count for this request.
    pub fn with_threads(mut self, threads: usize) -> Self {
        self.num_threads = Some(threads);
        self
    }

    /// Overrides the engine's retry policy for this request's store opens.
    pub fn with_retry(mut self, retry: RetryPolicy) -> Self {
        self.retry = Some(retry);
        self
    }

    /// Caps the bytes the engine's parked arenas may keep alive after this request.
    pub fn with_memory_budget(mut self, bytes: usize) -> Self {
        self.memory_budget = Some(bytes);
        self
    }

    /// Resolves the request against the engine defaults into the flat
    /// [`PartitionerConfig`] the pipeline runs on. Bit-identity across the free
    /// functions and the engine API rests on this being a verbatim field mapping.
    pub fn effective_config(&self, engine: &EngineConfig) -> PartitionerConfig {
        let mut ondisk = engine.ondisk.clone();
        if let Some(retry) = self.retry {
            ondisk.retry = retry;
        }
        PartitionerConfig {
            k: self.k,
            epsilon: self.epsilon,
            num_threads: self.num_threads.unwrap_or(engine.num_threads),
            seed: self.seed,
            use_compression: engine.use_compression,
            coarsening: self.coarsening.clone(),
            initial: self.initial.clone(),
            refinement: self.refinement.clone(),
            ondisk,
            obs: self.obs.clone(),
        }
    }
}

/// Pool of [`HierarchyScratch`] arenas, checked out one per request.
///
/// Arenas only ever grow, so a parked arena sized by one request serves the next
/// allocation-free; concurrent requests each get their own arena (never shared — the
/// pipeline mutates it throughout) and the pool's high-water mark records the maximum
/// simultaneous checkout count, which is what peak auxiliary memory scales with:
/// 8 sequential requests on one engine cost one arena, not eight.
#[derive(Debug, Default)]
pub struct ScratchPool {
    // Boxed so checkout/park move a pointer, not the multi-hundred-field arena.
    #[allow(clippy::vec_box)]
    parked: Mutex<Vec<Box<HierarchyScratch>>>,
    live: AtomicUsize,
    high_water: AtomicUsize,
}

impl ScratchPool {
    /// An empty pool.
    pub fn new() -> Self {
        Self::default()
    }

    /// Checks out an arena (reusing the most recently parked one if available). The
    /// lease parks the arena again on drop.
    pub fn checkout(&self) -> ScratchLease<'_> {
        let scratch = self
            .parked
            .lock()
            .pop()
            .unwrap_or_else(|| Box::new(HierarchyScratch::new()));
        let live = self.live.fetch_add(1, Ordering::Relaxed) + 1;
        self.high_water.fetch_max(live, Ordering::Relaxed);
        ScratchLease {
            pool: self,
            scratch: Some(scratch),
        }
    }

    /// Maximum number of simultaneously checked-out arenas ever observed.
    pub fn high_water(&self) -> usize {
        self.high_water.load(Ordering::Relaxed)
    }

    /// Number of arenas currently parked (idle).
    pub fn parked_arenas(&self) -> usize {
        self.parked.lock().len()
    }

    /// Total accounted bytes of the parked arenas.
    pub fn parked_bytes(&self) -> usize {
        self.parked.lock().iter().map(|s| s.memory_bytes()).sum()
    }

    /// Drops parked arenas, largest first, until their total accounted bytes fit
    /// `budget`. Live (checked-out) arenas are unaffected.
    pub fn trim_to_bytes(&self, budget: usize) {
        let mut parked = self.parked.lock();
        while parked.iter().map(|s| s.memory_bytes()).sum::<usize>() > budget {
            let largest = parked
                .iter()
                .enumerate()
                .max_by_key(|(_, s)| s.memory_bytes())
                .map(|(i, _)| i);
            match largest {
                Some(i) => {
                    parked.swap_remove(i);
                }
                None => break,
            }
        }
    }

    /// Drops every parked arena (releasing their memtrack charges).
    pub fn clear(&self) {
        self.parked.lock().clear();
    }

    fn park(&self, mut scratch: Box<HierarchyScratch>) {
        // A parked arena must not keep the previous request's recording sink alive.
        scratch.reset_obs();
        self.live.fetch_sub(1, Ordering::Relaxed);
        self.parked.lock().push(scratch);
    }
}

/// A checked-out [`HierarchyScratch`]; derefs to the arena and parks it on drop.
#[derive(Debug)]
pub struct ScratchLease<'a> {
    pool: &'a ScratchPool,
    scratch: Option<Box<HierarchyScratch>>,
}

impl Deref for ScratchLease<'_> {
    type Target = HierarchyScratch;
    fn deref(&self) -> &HierarchyScratch {
        self.scratch.as_deref().unwrap_or_else(|| unreachable!())
    }
}

impl DerefMut for ScratchLease<'_> {
    fn deref_mut(&mut self) -> &mut HierarchyScratch {
        self.scratch
            .as_deref_mut()
            .unwrap_or_else(|| unreachable!())
    }
}

impl Drop for ScratchLease<'_> {
    fn drop(&mut self) {
        if let Some(scratch) = self.scratch.take() {
            self.pool.park(scratch);
        }
    }
}

/// The long-lived partitioning engine (see the module docs).
///
/// `&PartitionEngine` is `Sync`: concurrent requests from multiple threads are the
/// intended use. Each request checks out its own scratch arena and store session, so
/// requests share *immutable* state only (the open stores, the engine config) and a
/// fixed-seed request returns the same partition whether it runs alone or next to
/// seven co-tenants.
#[derive(Debug, Default)]
pub struct PartitionEngine {
    config: EngineConfig,
    registry: StoreRegistry,
    pool: ScratchPool,
}

impl PartitionEngine {
    /// An engine with default configuration.
    pub fn new() -> Self {
        Self::default()
    }

    /// An engine with the given configuration.
    pub fn with_config(config: EngineConfig) -> Self {
        Self {
            config,
            registry: StoreRegistry::new(),
            pool: ScratchPool::new(),
        }
    }

    /// The engine-level configuration.
    pub fn config(&self) -> &EngineConfig {
        &self.config
    }

    /// The engine's open-store registry.
    pub fn registry(&self) -> &StoreRegistry {
        &self.registry
    }

    /// The engine's scratch-arena pool.
    pub fn scratch_pool(&self) -> &ScratchPool {
        &self.pool
    }

    /// Opens (or returns the already-open handle of) the `.tpg` container at `path`
    /// with the engine's on-disk options. Sessions created from the returned handle
    /// can be partitioned with [`Self::partition_store`].
    pub fn open_store(
        &self,
        path: impl AsRef<Path>,
    ) -> Result<std::sync::Arc<StoreHandle>, IoError> {
        self.registry.open(path, &self.config.ondisk)
    }

    /// Partitions any in-memory [`Graph`] representation as-is (no compression step).
    pub fn partition(&self, graph: &impl Graph, request: &PartitionRequest) -> PartitionResult {
        let tracker = PhaseTracker::new();
        self.partition_with_tracker(graph, request, &tracker)
    }

    /// [`Self::partition`] with an externally supplied phase tracker.
    pub fn partition_with_tracker(
        &self,
        graph: &impl Graph,
        request: &PartitionRequest,
        tracker: &PhaseTracker,
    ) -> PartitionResult {
        let config = request.effective_config(&self.config);
        let session = ObsSession::new(&config);
        let result = {
            let mut scratch = self.pool.checkout();
            partition_with_session(graph, &config, tracker, session, &mut scratch)
        };
        self.enforce_budget(request);
        result
    }

    /// Partitions a CSR graph, honouring the engine's compression policy: with
    /// `use_compression` the input is compressed first (reported as the
    /// `compress_input` phase) and the pipeline runs on the compressed representation.
    pub fn partition_csr(&self, graph: &CsrGraph, request: &PartitionRequest) -> PartitionResult {
        let tracker = PhaseTracker::new();
        self.partition_csr_with_tracker(graph, request, &tracker)
    }

    /// [`Self::partition_csr`] with an externally supplied phase tracker.
    pub fn partition_csr_with_tracker(
        &self,
        graph: &CsrGraph,
        request: &PartitionRequest,
        tracker: &PhaseTracker,
    ) -> PartitionResult {
        let config = request.effective_config(&self.config);
        let session = ObsSession::new(&config);
        let result = if config.use_compression {
            let compressed = obs_phase(&session.handle, tracker, "compress_input", 0, || {
                compress_csr_parallel(graph, &CompressionConfig::default(), config.num_threads)
            });
            let _graph_charge = MemoryScope::charge_global(compressed.size_in_bytes());
            let mut scratch = self.pool.checkout();
            partition_with_session(&compressed, &config, tracker, session, &mut scratch)
        } else {
            let _graph_charge = MemoryScope::charge_global(graph.size_in_bytes());
            let mut scratch = self.pool.checkout();
            partition_with_session(graph, &config, tracker, session, &mut scratch)
        };
        self.enforce_budget(request);
        result
    }

    /// Partitions the `.tpg` container at `path`, opening it through the engine's
    /// registry (deduplicated against other requests for the same container) and
    /// reading it through a per-request session. See
    /// [`crate::partition_ondisk`] for the semantics and error contract.
    pub fn partition_path(
        &self,
        path: impl AsRef<Path>,
        request: &PartitionRequest,
    ) -> Result<PartitionResult, PartitionError> {
        let tracker = PhaseTracker::new();
        self.partition_path_with_tracker(path, request, &tracker)
    }

    /// [`Self::partition_path`] with an externally supplied phase tracker. The
    /// container open (or registry hit) is reported as the `open_store` phase.
    pub fn partition_path_with_tracker(
        &self,
        path: impl AsRef<Path>,
        request: &PartitionRequest,
        tracker: &PhaseTracker,
    ) -> Result<PartitionResult, PartitionError> {
        let config = request.effective_config(&self.config);
        let obs = ObsSession::new(&config);
        let store = obs_phase(&obs.handle, tracker, "open_store", 0, || {
            self.registry.open(path, &config.ondisk)
        })
        .map_err(|e| {
            PartitionError::new(Some("open_store@0".into()), "opening the .tpg container", e)
        })?;
        let result = self.run_store(&store, &config, tracker, obs);
        self.enforce_budget(request);
        result
    }

    /// Partitions an already-open shared store. Each call creates its own
    /// [`StoreSession`], so concurrent calls against one `Arc<StoreHandle>` are
    /// isolated: a storage fault fails only the session that hit it.
    pub fn partition_store(
        &self,
        store: &StoreHandle,
        request: &PartitionRequest,
    ) -> Result<PartitionResult, PartitionError> {
        let tracker = PhaseTracker::new();
        self.partition_store_with_tracker(store, request, &tracker)
    }

    /// [`Self::partition_store`] with an externally supplied phase tracker.
    pub fn partition_store_with_tracker(
        &self,
        store: &StoreHandle,
        request: &PartitionRequest,
        tracker: &PhaseTracker,
    ) -> Result<PartitionResult, PartitionError> {
        let config = request.effective_config(&self.config);
        let obs = ObsSession::new(&config);
        let result = self.run_store(store, &config, tracker, obs);
        self.enforce_budget(request);
        result
    }

    /// Partitions an already-open [`PagedGraph`] through a per-request session — the
    /// entry point the fault-injection harness uses with custom backends.
    pub fn partition_paged_with_tracker(
        &self,
        graph: &PagedGraph,
        request: &PartitionRequest,
        tracker: &PhaseTracker,
    ) -> Result<PartitionResult, PartitionError> {
        let config = request.effective_config(&self.config);
        let obs = ObsSession::new(&config);
        let session = StoreSession::paged(graph);
        let result = self.run_session(
            &session,
            &config,
            tracker,
            obs,
            || graph.wait_prefetch_idle(),
            || Some(graph.cache_stats()),
        );
        self.enforce_budget(request);
        result
    }

    /// Shared store-session run: session for `store`, pipeline, prefetch drain,
    /// poison check, cache-stats snapshot.
    fn run_store(
        &self,
        store: &StoreHandle,
        config: &PartitionerConfig,
        tracker: &PhaseTracker,
        obs: ObsSession,
    ) -> Result<PartitionResult, PartitionError> {
        let session = store.session();
        self.run_session(
            &session,
            config,
            tracker,
            obs,
            || store.wait_prefetch_idle(),
            || store.cache_stats(),
        )
    }

    /// Runs the pipeline against one [`StoreSession`]. The fault observer labels any
    /// mid-run storage fault with the pipeline phase it interrupted; a poisoned
    /// session discards its partial result and surfaces the first fatal error. Only
    /// the session is poisoned — the underlying store and its other sessions are
    /// untouched.
    fn run_session(
        &self,
        session: &StoreSession<'_>,
        config: &PartitionerConfig,
        tracker: &PhaseTracker,
        obs: ObsSession,
        wait_idle: impl FnOnce(),
        cache_stats: impl FnOnce() -> Option<CacheStatsSnapshot>,
    ) -> Result<PartitionResult, PartitionError> {
        let phases = tracker.phase_handle();
        session.set_fault_observer(move || phases.current().unwrap_or_default());
        let mut result = {
            let mut scratch = self.pool.checkout();
            partition_with_session(session, config, tracker, obs, &mut scratch)
        };
        // Let queued readahead hints drain so the snapshot's prefetch counters are
        // settled (prefetch itself never affects results, only cache residency).
        wait_idle();
        if let Some(fatal) = session.take_fatal_error() {
            return Err(PartitionError::new(
                fatal.context,
                "reading the .tpg container mid-pipeline",
                IoError::Io(fatal.error),
            ));
        }
        result.cache_stats = cache_stats();
        Ok(result)
    }

    fn enforce_budget(&self, request: &PartitionRequest) {
        if let Some(budget) = request.memory_budget {
            self.pool.trim_to_bytes(budget);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::partitioner::partition;
    use graph::gen;

    #[test]
    fn scratch_pool_reuses_one_arena_across_sequential_checkouts() {
        let pool = ScratchPool::new();
        {
            let mut lease = pool.checkout();
            lease.ensure_buckets(4096);
        }
        assert_eq!(pool.parked_arenas(), 1);
        assert_eq!(pool.high_water(), 1);
        let first_bytes = pool.parked_bytes();
        assert!(first_bytes > 0);
        {
            let lease = pool.checkout();
            // The parked (already sized) arena came back.
            assert!(lease.memory_bytes() >= first_bytes);
            assert_eq!(pool.parked_arenas(), 0);
        }
        assert_eq!(pool.high_water(), 1, "sequential checkouts never overlap");
    }

    #[test]
    fn scratch_pool_trims_largest_arena_first() {
        let pool = ScratchPool::new();
        {
            let mut big = pool.checkout();
            big.ensure_buckets(32_768);
            let mut small = pool.checkout();
            small.ensure_buckets(1024);
        }
        assert_eq!(pool.parked_arenas(), 2);
        assert_eq!(pool.high_water(), 2);
        let small_bytes = {
            let all = pool.parked_bytes();
            // Trim to just above the small arena: the big one must go.
            let small = pool
                .parked
                .lock()
                .iter()
                .map(|s| s.memory_bytes())
                .min()
                .unwrap();
            pool.trim_to_bytes(small + 64);
            assert_eq!(pool.parked_arenas(), 1);
            assert!(pool.parked_bytes() < all);
            small
        };
        assert!(pool.parked_bytes() <= small_bytes + 64);
        pool.trim_to_bytes(0);
        assert_eq!(pool.parked_arenas(), 0);
    }

    #[test]
    fn engine_matches_free_function_bit_for_bit() {
        let g = gen::erdos_renyi(600, 2500, 13);
        let config = PartitionerConfig::terapart(4).with_threads(1).with_seed(42);
        let reference = partition(&g, &config);
        let engine = PartitionEngine::with_config(EngineConfig::from_partitioner(&config));
        let request = PartitionRequest::from_config(&config);
        let a = engine.partition(&g, &request);
        // A second run on the warmed engine reuses the parked arena and still matches.
        let b = engine.partition(&g, &request);
        assert_eq!(a.edge_cut, reference.edge_cut);
        assert_eq!(a.partition.assignment(), reference.partition.assignment());
        assert_eq!(b.partition.assignment(), reference.partition.assignment());
        assert_eq!(engine.scratch_pool().high_water(), 1);
        assert_eq!(engine.scratch_pool().parked_arenas(), 1);
    }

    #[test]
    fn request_resolution_round_trips_the_flat_config() {
        let config = PartitionerConfig::terapart_fm(12)
            .with_threads(3)
            .with_seed(99)
            .with_epsilon(0.07);
        let engine = EngineConfig::from_partitioner(&config);
        let request = PartitionRequest::from_config(&config);
        let resolved = request.effective_config(&engine);
        assert_eq!(resolved.k, config.k);
        assert_eq!(resolved.epsilon, config.epsilon);
        assert_eq!(resolved.num_threads, config.num_threads);
        assert_eq!(resolved.seed, config.seed);
        assert_eq!(resolved.use_compression, config.use_compression);
        assert_eq!(resolved.coarsening, config.coarsening);
        assert_eq!(resolved.refinement, config.refinement);
        assert_eq!(resolved.ondisk, config.ondisk);
    }

    #[test]
    fn memory_budget_trims_the_parked_pool() {
        let g = gen::grid2d(24, 24);
        let config = PartitionerConfig::terapart(4).with_threads(1).with_seed(1);
        let engine = PartitionEngine::with_config(EngineConfig::from_partitioner(&config));
        let unbudgeted = PartitionRequest::from_config(&config);
        engine.partition(&g, &unbudgeted);
        assert!(engine.scratch_pool().parked_bytes() > 0);
        let budgeted = unbudgeted.with_memory_budget(0);
        engine.partition(&g, &budgeted);
        assert_eq!(
            engine.scratch_pool().parked_bytes(),
            0,
            "a zero budget must release every parked arena"
        );
        assert_eq!(engine.scratch_pool().parked_arenas(), 0);
    }
}
