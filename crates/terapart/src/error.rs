//! Structured errors of the on-disk partitioning entry points.
//!
//! The [`Graph`](graph::traits::Graph) accessors the pipeline runs against cannot
//! return `Result`s, so a [`graph::PagedGraph`] that keeps failing after checksum
//! verification and retries *poisons* itself instead of panicking (see the graph
//! crate's failure protocol). The on-disk driver turns that — and plain open
//! failures — into a [`PartitionError`] carrying the pipeline phase the fault
//! interrupted, so callers get one structured error instead of a panic deep inside
//! clustering or refinement.

use graph::io::IoError;

/// Why an on-disk partitioning run failed, with the pipeline phase it failed in.
#[derive(Debug)]
pub struct PartitionError {
    /// The pipeline phase active when the fault struck (`"name@level"`, e.g.
    /// `"cluster@0"`), when known. `None` when the fault hit outside any tracked
    /// phase.
    pub phase: Option<String>,
    /// What the run was doing, e.g. `"opening the .tpg container"`.
    pub context: String,
    /// The underlying storage error.
    pub source: IoError,
}

impl PartitionError {
    pub(crate) fn new(phase: Option<String>, context: impl Into<String>, source: IoError) -> Self {
        Self {
            phase: phase.filter(|p| !p.is_empty()),
            context: context.into(),
            source,
        }
    }
}

impl std::fmt::Display for PartitionError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match &self.phase {
            Some(phase) => write!(
                f,
                "on-disk partitioning failed in phase {} while {}: {}",
                phase, self.context, self.source
            ),
            None => write!(
                f,
                "on-disk partitioning failed while {}: {}",
                self.context, self.source
            ),
        }
    }
}

impl std::error::Error for PartitionError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        Some(&self.source)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_includes_phase_context_and_source() {
        let err = PartitionError::new(
            Some("cluster@2".into()),
            "decoding a neighbourhood",
            IoError::Corrupt("block 7 checksum mismatch".into()),
        );
        let msg = err.to_string();
        assert!(msg.contains("cluster@2"), "missing phase: {}", msg);
        assert!(msg.contains("decoding a neighbourhood"), "{}", msg);
        assert!(msg.contains("block 7"), "{}", msg);
        assert!(std::error::Error::source(&err).is_some());
    }

    #[test]
    fn empty_phase_strings_collapse_to_none() {
        let err = PartitionError::new(
            Some(String::new()),
            "opening the .tpg container",
            IoError::Format("bad magic".into()),
        );
        assert_eq!(err.phase, None);
        assert!(!err.to_string().contains("phase"));
    }
}
