//! 2-way initial partitioning: greedy graph growing plus 2-way FM refinement.
//!
//! KaMinPar's initial bipartitioning uses a portfolio of randomized sequential greedy
//! graph growing heuristics refined with 2-way FM (paper §II-B). These routines run on
//! the coarsest graph only, so they are sequential; the multilevel driver invokes them
//! repeatedly with different seeds and keeps the best result.

use std::collections::BinaryHeap;

use graph::traits::Graph;
use graph::{EdgeWeight, NodeId, NodeWeight};
use rand::prelude::*;
use rand_chacha::ChaCha8Rng;

/// A bipartition represented as a boolean per vertex (`true` = block 1).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Bipartition {
    /// Side of each vertex.
    pub side: Vec<bool>,
    /// Total node weight on side 0.
    pub weight0: NodeWeight,
    /// Total node weight on side 1.
    pub weight1: NodeWeight,
}

impl Bipartition {
    /// Computes the edge cut of the bipartition on `graph`.
    pub fn cut(&self, graph: &impl Graph) -> EdgeWeight {
        let mut cut = 0;
        for u in 0..graph.n() as NodeId {
            graph.for_each_neighbor(u, &mut |v, w| {
                if u < v && self.side[u as usize] != self.side[v as usize] {
                    cut += w;
                }
            });
        }
        cut
    }
}

/// Grows block 0 greedily from a random seed vertex until it reaches `target_weight0`;
/// the remaining vertices form block 1.
///
/// Frontier vertices are picked by the strength of their connection to the growing block
/// (greedy graph growing). Disconnected graphs are handled by restarting from a fresh
/// random unassigned vertex whenever the frontier runs dry.
pub fn greedy_graph_growing(
    graph: &impl Graph,
    target_weight0: NodeWeight,
    seed: u64,
) -> Bipartition {
    let n = graph.n();
    let mut rng = ChaCha8Rng::seed_from_u64(seed);
    // true = assigned to block 0.
    let mut in_block0 = vec![false; n];
    let mut assigned = vec![false; n];
    let mut weight0: NodeWeight = 0;
    // Max-heap of (connection weight to block 0, vertex).
    let mut frontier: BinaryHeap<(EdgeWeight, NodeId)> = BinaryHeap::new();

    let mut order: Vec<NodeId> = (0..n as NodeId).collect();
    order.shuffle(&mut rng);
    let mut next_seed = 0usize;

    while weight0 < target_weight0 {
        let u = match frontier.pop() {
            Some((_, u)) if !assigned[u as usize] => u,
            Some(_) => continue, // stale heap entry
            None => {
                // Frontier exhausted: restart from an arbitrary unassigned vertex.
                let mut restart = None;
                while next_seed < order.len() {
                    let candidate = order[next_seed];
                    next_seed += 1;
                    if !assigned[candidate as usize] {
                        restart = Some(candidate);
                        break;
                    }
                }
                match restart {
                    Some(u) => u,
                    None => break, // every vertex assigned
                }
            }
        };
        assigned[u as usize] = true;
        in_block0[u as usize] = true;
        weight0 += graph.node_weight(u);
        graph.for_each_neighbor(u, &mut |v, w| {
            if !assigned[v as usize] {
                frontier.push((w, v));
            }
        });
    }

    let side: Vec<bool> = in_block0.iter().map(|&b| !b).collect();
    let total = graph.total_node_weight();
    Bipartition {
        side,
        weight0,
        weight1: total - weight0,
    }
}

/// One pass of 2-way FM refinement with rollback to the best observed prefix.
///
/// Returns the cut improvement achieved by the pass (0 if no improvement was possible).
pub fn fm_bipartition_pass(
    graph: &impl Graph,
    bipartition: &mut Bipartition,
    max_weight: [NodeWeight; 2],
) -> EdgeWeight {
    let n = graph.n();
    // gain(u) = weight towards the other side - weight towards the own side.
    let gain_of = |u: NodeId, side: &[bool]| -> i64 {
        let mut internal: i64 = 0;
        let mut external: i64 = 0;
        graph.for_each_neighbor(u, &mut |v, w| {
            if side[v as usize] == side[u as usize] {
                internal += w as i64;
            } else {
                external += w as i64;
            }
        });
        external - internal
    };

    let mut side = bipartition.side.clone();
    let mut weights = [bipartition.weight0, bipartition.weight1];
    let mut locked = vec![false; n];
    let mut heap: BinaryHeap<(i64, NodeId, u32)> = BinaryHeap::new();
    let mut stamp = vec![0u32; n];
    for u in 0..n as NodeId {
        heap.push((gain_of(u, &side), u, 0));
    }

    let mut best_improvement: i64 = 0;
    let mut current_improvement: i64 = 0;
    let mut moves: Vec<NodeId> = Vec::new();
    let mut best_prefix = 0usize;

    while let Some((gain, u, s)) = heap.pop() {
        if locked[u as usize] || s != stamp[u as usize] {
            continue;
        }
        let from = side[u as usize] as usize;
        let to = 1 - from;
        let w = graph.node_weight(u);
        if weights[to] + w > max_weight[to] {
            continue;
        }
        // Apply the move tentatively.
        locked[u as usize] = true;
        side[u as usize] = !side[u as usize];
        weights[from] -= w;
        weights[to] += w;
        current_improvement += gain;
        moves.push(u);
        if current_improvement > best_improvement {
            best_improvement = current_improvement;
            best_prefix = moves.len();
        }
        // Update the gains of unlocked neighbours.
        graph.for_each_neighbor(u, &mut |v, _| {
            if !locked[v as usize] {
                stamp[v as usize] += 1;
                heap.push((gain_of(v, &side), v, stamp[v as usize]));
            }
        });
        // Heuristic stop: once the pass has moved every vertex there is nothing left.
        if moves.len() >= n {
            break;
        }
    }

    if best_improvement <= 0 {
        return 0;
    }
    // Roll back to the best prefix and commit it.
    for &u in &moves[best_prefix..] {
        let w = graph.node_weight(u);
        let from = side[u as usize] as usize;
        side[u as usize] = !side[u as usize];
        weights[from] -= w;
        weights[1 - from] += w;
    }
    bipartition.side = side;
    bipartition.weight0 = weights[0];
    bipartition.weight1 = weights[1];
    best_improvement as EdgeWeight
}

/// Produces a refined bipartition: greedy growing followed by `fm_passes` FM passes.
pub fn bipartition(
    graph: &impl Graph,
    target_weight0: NodeWeight,
    max_weight: [NodeWeight; 2],
    fm_passes: usize,
    seed: u64,
) -> Bipartition {
    let mut result = greedy_graph_growing(graph, target_weight0, seed);
    for _ in 0..fm_passes {
        if fm_bipartition_pass(graph, &mut result, max_weight) == 0 {
            break;
        }
    }
    result
}

#[cfg(test)]
mod tests {
    use super::*;
    use graph::gen;

    #[test]
    fn growing_hits_the_target_weight() {
        let g = gen::grid2d(10, 10);
        let b = greedy_graph_growing(&g, 50, 3);
        assert!(b.weight0 >= 50);
        assert!(b.weight0 <= 55, "block 0 overshoots: {}", b.weight0);
        assert_eq!(b.weight0 + b.weight1, 100);
        assert_eq!(b.side.iter().filter(|&&s| !s).count() as u64, b.weight0);
    }

    #[test]
    fn growing_handles_disconnected_graphs() {
        // Two disjoint cliques: growing must restart to fill the target.
        let g = gen::clique_chain(2, 10);
        // Remove the bridge by building the graph manually.
        let mut builder = graph::CsrGraphBuilder::new(20);
        for c in 0..2 {
            for i in 0..10 {
                for j in (i + 1)..10 {
                    builder.add_edge((c * 10 + i) as NodeId, (c * 10 + j) as NodeId, 1);
                }
            }
        }
        let disconnected = builder.build();
        let b = greedy_graph_growing(&disconnected, 15, 1);
        assert!(b.weight0 >= 15);
        assert!(g.n() == 20);
    }

    #[test]
    fn fm_improves_a_bad_bipartition() {
        // Two cliques joined by one bridge; the optimal bisection cuts only the bridge.
        let g = gen::clique_chain(2, 8);
        // Start from an interleaved (bad) assignment.
        let side: Vec<bool> = (0..16).map(|u| u % 2 == 0).collect();
        let weight1 = side.iter().filter(|&&s| s).count() as NodeWeight;
        let mut b = Bipartition {
            side,
            weight0: 16 - weight1,
            weight1,
        };
        let initial_cut = b.cut(&g);
        let mut improved = 0;
        for _ in 0..5 {
            let delta = fm_bipartition_pass(&g, &mut b, [9, 9]);
            improved += delta;
            if delta == 0 {
                break;
            }
        }
        let final_cut = b.cut(&g);
        assert_eq!(initial_cut - improved, final_cut);
        assert_eq!(
            final_cut, 1,
            "FM should find the single-bridge cut, got {}",
            final_cut
        );
        assert!(b.weight0 <= 9 && b.weight1 <= 9);
    }

    #[test]
    fn fm_respects_balance_constraint() {
        let g = gen::complete(10);
        let side: Vec<bool> = (0..10).map(|u| u >= 5).collect();
        let mut b = Bipartition {
            side,
            weight0: 5,
            weight1: 5,
        };
        fm_bipartition_pass(&g, &mut b, [6, 6]);
        assert!(b.weight0 <= 6 && b.weight1 <= 6);
        assert_eq!(b.weight0 + b.weight1, 10);
    }

    #[test]
    fn bipartition_end_to_end_is_balanced_and_low_cut() {
        let g = gen::grid2d(12, 12);
        let total = g.total_node_weight();
        let b = bipartition(&g, total / 2, [80, 80], 3, 7);
        assert!(b.weight0 <= 80 && b.weight1 <= 80);
        // A 12x12 grid has a bisection of width 12; allow some slack.
        assert!(b.cut(&g) <= 30, "cut too high: {}", b.cut(&g));
    }

    #[test]
    fn zero_target_puts_everything_in_block_one() {
        let g = gen::path(5);
        let b = greedy_graph_growing(&g, 0, 1);
        assert_eq!(b.weight0, 0);
        assert!(b.side.iter().all(|&s| s));
    }
}
