//! 2-way initial partitioning: greedy graph growing plus 2-way FM refinement.
//!
//! KaMinPar's initial bipartitioning uses a portfolio of randomized sequential greedy
//! graph growing heuristics refined with 2-way FM (paper §II-B). Each routine runs on
//! one (sub)graph of the coarsest level; the multilevel driver invokes them with
//! different seeds — concurrently, when the portfolio is parallelized — and keeps the
//! best result.
//!
//! All state lives in an [`AttemptWorkspace`] checked out from the initial-partitioning
//! scratch pool, so repeated attempts across the bisection tree are allocation-free: the
//! `*_into` functions are the hot path, and the plain wrappers ([`greedy_graph_growing`],
//! [`fm_bipartition_pass`], [`bipartition`]) exist for tests and standalone use.
//!
//! The FM pass maintains vertex gains **incrementally**: moving `u` changes a
//! neighbour's gain by exactly `±2w`, so a move costs `O(deg(u))` instead of the seed
//! implementation's `O(Σ_v deg(v))` full recomputation per touched neighbour — the
//! dominant cost on skewed (web-like) coarsest graphs.

use graph::traits::Graph;
use graph::{EdgeWeight, NodeId, NodeWeight};
use rand::prelude::*;
use rand_chacha::ChaCha8Rng;

use super::scratch::AttemptWorkspace;

/// A bipartition represented as a boolean per vertex (`true` = block 1).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Bipartition {
    /// Side of each vertex.
    pub side: Vec<bool>,
    /// Total node weight on side 0.
    pub weight0: NodeWeight,
    /// Total node weight on side 1.
    pub weight1: NodeWeight,
}

impl Bipartition {
    /// Computes the edge cut of the bipartition on `graph`.
    pub fn cut(&self, graph: &impl Graph) -> EdgeWeight {
        cut_of(graph, &self.side)
    }
}

/// Edge cut of the side assignment on `graph` (each undirected edge counted once).
pub(crate) fn cut_of(graph: &impl Graph, side: &[bool]) -> EdgeWeight {
    let mut cut = 0;
    for u in 0..graph.n() as NodeId {
        graph.for_each_neighbor(u, &mut |v, w| {
            if u < v && side[u as usize] != side[v as usize] {
                cut += w;
            }
        });
    }
    cut
}

/// Grows block 0 greedily from a random seed vertex until it reaches `target_weight0`;
/// the remaining vertices form block 1. The result is left in `ws.side` /
/// `ws.weight0` / `ws.weight1`.
///
/// Frontier vertices are picked by the strength of their connection to the growing block
/// (greedy graph growing). Disconnected graphs are handled by restarting from a fresh
/// random unassigned vertex whenever the frontier runs dry.
pub(crate) fn greedy_graph_growing_into(
    graph: &impl Graph,
    target_weight0: NodeWeight,
    seed: u64,
    ws: &mut AttemptWorkspace,
) {
    let n = graph.n();
    let mut rng = ChaCha8Rng::seed_from_u64(seed);
    // `side[u] = false` marks membership in the growing block 0.
    ws.side.clear();
    ws.side.resize(n, true);
    ws.assigned.clear();
    ws.assigned.resize(n, false);
    let mut weight0: NodeWeight = 0;
    // Max-heap of (connection weight to block 0, vertex); the stamp slot is unused here.
    ws.heap.clear();

    ws.order.clear();
    ws.order.extend(0..n as NodeId);
    ws.order.shuffle(&mut rng);
    let mut next_seed = 0usize;

    while weight0 < target_weight0 {
        let u = match ws.heap.pop() {
            Some((_, u, _)) if !ws.assigned[u as usize] => u,
            Some(_) => continue, // stale heap entry
            None => {
                // Frontier exhausted: restart from an arbitrary unassigned vertex.
                let mut restart = None;
                while next_seed < ws.order.len() {
                    let candidate = ws.order[next_seed];
                    next_seed += 1;
                    if !ws.assigned[candidate as usize] {
                        restart = Some(candidate);
                        break;
                    }
                }
                match restart {
                    Some(u) => u,
                    None => break, // every vertex assigned
                }
            }
        };
        ws.assigned[u as usize] = true;
        ws.side[u as usize] = false;
        weight0 += graph.node_weight(u);
        let assigned = &ws.assigned;
        let heap = &mut ws.heap;
        graph.for_each_neighbor(u, &mut |v, w| {
            if !assigned[v as usize] {
                heap.push((w as i64, v, 0));
            }
        });
    }

    ws.weight0 = weight0;
    ws.weight1 = graph.total_node_weight() - weight0;
}

/// One pass of 2-way FM refinement with rollback to the best observed prefix, operating
/// in place on `ws.side` / `ws.weight0` / `ws.weight1`.
///
/// Returns the cut improvement achieved by the pass (0 if no improvement was possible;
/// the bipartition is then left exactly as it was).
pub(crate) fn fm_pass_into(
    graph: &impl Graph,
    max_weight: [NodeWeight; 2],
    ws: &mut AttemptWorkspace,
) -> EdgeWeight {
    let n = graph.n();
    let AttemptWorkspace {
        side,
        weight0,
        weight1,
        heap,
        gains,
        stamp,
        locked,
        moves,
        ..
    } = ws;

    // gain(u) = weight towards the other side - weight towards the own side; computed
    // once per pass, then maintained incrementally as vertices move.
    gains.clear();
    gains.resize(n, 0);
    for u in 0..n as NodeId {
        let own = side[u as usize];
        let mut gain: i64 = 0;
        graph.for_each_neighbor(u, &mut |v, w| {
            gain += if side[v as usize] == own {
                -(w as i64)
            } else {
                w as i64
            };
        });
        gains[u as usize] = gain;
    }

    stamp.clear();
    stamp.resize(n, 0);
    locked.clear();
    locked.resize(n, false);
    heap.clear();
    for u in 0..n as NodeId {
        heap.push((gains[u as usize], u, 0));
    }

    let mut weights = [*weight0, *weight1];
    let mut best_improvement: i64 = 0;
    let mut current_improvement: i64 = 0;
    moves.clear();
    let mut best_prefix = 0usize;

    while let Some((gain, u, s)) = heap.pop() {
        if locked[u as usize] || s != stamp[u as usize] {
            continue; // stale entry: the vertex moved or its gain changed since the push
        }
        let from = side[u as usize] as usize;
        let to = 1 - from;
        let w = graph.node_weight(u);
        if weights[to] + w > max_weight[to] {
            continue;
        }
        // Apply the move tentatively.
        locked[u as usize] = true;
        let new_side = !side[u as usize];
        side[u as usize] = new_side;
        weights[from] -= w;
        weights[to] += w;
        current_improvement += gain;
        moves.push(u);
        if current_improvement > best_improvement {
            best_improvement = current_improvement;
            best_prefix = moves.len();
        }
        // Update the gains of unlocked neighbours incrementally: an edge to u was
        // internal for neighbours on u's old side (now external: +2w) and external for
        // neighbours on u's new side (now internal: -2w).
        graph.for_each_neighbor(u, &mut |v, w| {
            if !locked[v as usize] {
                let delta = if side[v as usize] == new_side {
                    -2 * (w as i64)
                } else {
                    2 * (w as i64)
                };
                gains[v as usize] += delta;
                stamp[v as usize] += 1;
                heap.push((gains[v as usize], v, stamp[v as usize]));
            }
        });
        // Heuristic stop: once the pass has moved every vertex there is nothing left.
        if moves.len() >= n {
            break;
        }
    }

    // Roll back to the best prefix (all the way to the start if nothing improved).
    let keep = if best_improvement > 0 { best_prefix } else { 0 };
    for &u in &moves[keep..] {
        let w = graph.node_weight(u);
        let from = side[u as usize] as usize;
        side[u as usize] = !side[u as usize];
        weights[from] -= w;
        weights[1 - from] += w;
    }
    if best_improvement <= 0 {
        return 0;
    }
    *weight0 = weights[0];
    *weight1 = weights[1];
    best_improvement as EdgeWeight
}

/// Produces a refined bipartition in `ws`: greedy growing followed by up to `fm_passes`
/// FM passes (stopping early once a pass yields no improvement).
pub(crate) fn bipartition_into(
    graph: &impl Graph,
    target_weight0: NodeWeight,
    max_weight: [NodeWeight; 2],
    fm_passes: usize,
    seed: u64,
    ws: &mut AttemptWorkspace,
) {
    greedy_graph_growing_into(graph, target_weight0, seed, ws);
    for _ in 0..fm_passes {
        if fm_pass_into(graph, max_weight, ws) == 0 {
            break;
        }
    }
}

/// Standalone wrapper over `greedy_graph_growing_into` with a fresh workspace.
pub fn greedy_graph_growing(
    graph: &impl Graph,
    target_weight0: NodeWeight,
    seed: u64,
) -> Bipartition {
    let mut ws = AttemptWorkspace::default();
    greedy_graph_growing_into(graph, target_weight0, seed, &mut ws);
    Bipartition {
        side: std::mem::take(&mut ws.side),
        weight0: ws.weight0,
        weight1: ws.weight1,
    }
}

/// Standalone wrapper over `fm_pass_into` with a fresh workspace.
///
/// Returns the cut improvement achieved by the pass (0 if no improvement was possible).
pub fn fm_bipartition_pass(
    graph: &impl Graph,
    bipartition: &mut Bipartition,
    max_weight: [NodeWeight; 2],
) -> EdgeWeight {
    let mut ws = AttemptWorkspace {
        side: std::mem::take(&mut bipartition.side),
        weight0: bipartition.weight0,
        weight1: bipartition.weight1,
        ..AttemptWorkspace::default()
    };
    let improvement = fm_pass_into(graph, max_weight, &mut ws);
    bipartition.side = std::mem::take(&mut ws.side);
    bipartition.weight0 = ws.weight0;
    bipartition.weight1 = ws.weight1;
    improvement
}

/// Standalone wrapper over `bipartition_into` with a fresh workspace.
pub fn bipartition(
    graph: &impl Graph,
    target_weight0: NodeWeight,
    max_weight: [NodeWeight; 2],
    fm_passes: usize,
    seed: u64,
) -> Bipartition {
    let mut ws = AttemptWorkspace::default();
    bipartition_into(graph, target_weight0, max_weight, fm_passes, seed, &mut ws);
    Bipartition {
        side: std::mem::take(&mut ws.side),
        weight0: ws.weight0,
        weight1: ws.weight1,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use graph::gen;

    #[test]
    fn growing_hits_the_target_weight() {
        let g = gen::grid2d(10, 10);
        let b = greedy_graph_growing(&g, 50, 3);
        assert!(b.weight0 >= 50);
        assert!(b.weight0 <= 55, "block 0 overshoots: {}", b.weight0);
        assert_eq!(b.weight0 + b.weight1, 100);
        assert_eq!(b.side.iter().filter(|&&s| !s).count() as u64, b.weight0);
    }

    #[test]
    fn growing_handles_disconnected_graphs() {
        // Two disjoint cliques: growing must restart to fill the target.
        let g = gen::clique_chain(2, 10);
        // Remove the bridge by building the graph manually.
        let mut builder = graph::CsrGraphBuilder::new(20);
        for c in 0..2 {
            for i in 0..10 {
                for j in (i + 1)..10 {
                    builder.add_edge((c * 10 + i) as NodeId, (c * 10 + j) as NodeId, 1);
                }
            }
        }
        let disconnected = builder.build();
        let b = greedy_graph_growing(&disconnected, 15, 1);
        assert!(b.weight0 >= 15);
        assert!(g.n() == 20);
    }

    #[test]
    fn fm_improves_a_bad_bipartition() {
        // Two cliques joined by one bridge; the optimal bisection cuts only the bridge.
        let g = gen::clique_chain(2, 8);
        // Start from an interleaved (bad) assignment.
        let side: Vec<bool> = (0..16).map(|u| u % 2 == 0).collect();
        let weight1 = side.iter().filter(|&&s| s).count() as NodeWeight;
        let mut b = Bipartition {
            side,
            weight0: 16 - weight1,
            weight1,
        };
        let initial_cut = b.cut(&g);
        let mut improved = 0;
        for _ in 0..5 {
            let delta = fm_bipartition_pass(&g, &mut b, [9, 9]);
            improved += delta;
            if delta == 0 {
                break;
            }
        }
        let final_cut = b.cut(&g);
        assert_eq!(initial_cut - improved, final_cut);
        assert_eq!(
            final_cut, 1,
            "FM should find the single-bridge cut, got {}",
            final_cut
        );
        assert!(b.weight0 <= 9 && b.weight1 <= 9);
    }

    #[test]
    fn fm_respects_balance_constraint() {
        let g = gen::complete(10);
        let side: Vec<bool> = (0..10).map(|u| u >= 5).collect();
        let mut b = Bipartition {
            side,
            weight0: 5,
            weight1: 5,
        };
        fm_bipartition_pass(&g, &mut b, [6, 6]);
        assert!(b.weight0 <= 6 && b.weight1 <= 6);
        assert_eq!(b.weight0 + b.weight1, 10);
    }

    #[test]
    fn fm_leaves_the_bipartition_untouched_when_nothing_improves() {
        let g = gen::clique_chain(2, 10);
        let side: Vec<bool> = (0..20).map(|u| u >= 10).collect();
        let mut b = Bipartition {
            side: side.clone(),
            weight0: 10,
            weight1: 10,
        };
        let improvement = fm_bipartition_pass(&g, &mut b, [11, 11]);
        assert_eq!(improvement, 0);
        assert_eq!(b.side, side, "no-improvement pass must roll back fully");
        assert_eq!((b.weight0, b.weight1), (10, 10));
    }

    #[test]
    fn bipartition_end_to_end_is_balanced_and_low_cut() {
        let g = gen::grid2d(12, 12);
        let total = g.total_node_weight();
        let b = bipartition(&g, total / 2, [80, 80], 3, 7);
        assert!(b.weight0 <= 80 && b.weight1 <= 80);
        // A 12x12 grid has a bisection of width 12; allow some slack.
        assert!(b.cut(&g) <= 30, "cut too high: {}", b.cut(&g));
    }

    #[test]
    fn zero_target_puts_everything_in_block_one() {
        let g = gen::path(5);
        let b = greedy_graph_growing(&g, 0, 1);
        assert_eq!(b.weight0, 0);
        assert!(b.side.iter().all(|&s| s));
    }

    #[test]
    fn workspace_reuse_is_equivalent_to_fresh_workspaces() {
        // The same seeds through one reused workspace must reproduce the standalone
        // results exactly — reused buffers must not leak state between attempts.
        let g = gen::rgg2d(400, 9, 17);
        let total = g.total_node_weight();
        let max = [total, total];
        let mut ws = AttemptWorkspace::default();
        for seed in [1u64, 7, 42, 1_000_003] {
            bipartition_into(&g, total / 2, max, 3, seed, &mut ws);
            let fresh = bipartition(&g, total / 2, max, 3, seed);
            assert_eq!(ws.side, fresh.side, "seed {seed}");
            assert_eq!((ws.weight0, ws.weight1), (fresh.weight0, fresh.weight1));
        }
    }
}
