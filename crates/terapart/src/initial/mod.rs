//! Initial partitioning of the coarsest graph.
//!
//! KaMinPar partitions the coarsest graph with a portfolio of randomized greedy graph
//! growing heuristics refined by 2-way FM (paper §II-B), recursing to obtain `k` blocks.
//! The coarsest graph has `O(contraction_limit · k)` vertices, so this stage is cheap and
//! runs sequentially per bisection; the portfolio attempts use different seeds and the
//! best (lowest-cut, balanced) result is kept.

pub mod bipartition;

use graph::csr::{CsrGraph, CsrGraphBuilder};
use graph::traits::Graph;
use graph::{NodeId, NodeWeight};

use crate::context::InitialPartitioningConfig;
use crate::partition::{BlockId, Partition};

use bipartition::{bipartition, Bipartition};

/// Computes an initial `k`-way partition of `graph` via recursive bisection.
pub fn initial_partition(
    graph: &CsrGraph,
    k: usize,
    epsilon: f64,
    config: &InitialPartitioningConfig,
    seed: u64,
) -> Partition {
    assert!(k >= 1);
    let n = graph.n();
    let mut assignment: Vec<BlockId> = vec![0; n];
    if k > 1 && n > 0 {
        let vertices: Vec<NodeId> = (0..n as NodeId).collect();
        recurse(
            graph,
            &vertices,
            0,
            k,
            epsilon,
            config,
            seed,
            &mut assignment,
        );
    }
    let mut partition = Partition::from_assignment(graph, k, epsilon, assignment);
    let cut = partition.edge_cut_on(graph);
    partition.set_cached_cut(cut);
    partition
}

/// Recursively bisects the subgraph induced by `vertices` into blocks
/// `[first_block, first_block + k)`.
#[allow(clippy::too_many_arguments)]
fn recurse(
    graph: &CsrGraph,
    vertices: &[NodeId],
    first_block: usize,
    k: usize,
    epsilon: f64,
    config: &InitialPartitioningConfig,
    seed: u64,
    assignment: &mut [BlockId],
) {
    if k == 1 || vertices.is_empty() {
        for &u in vertices {
            assignment[u as usize] = first_block as BlockId;
        }
        return;
    }
    let (sub, original) = induced_subgraph(graph, vertices);
    let total = sub.total_node_weight();
    let k0 = k.div_ceil(2);
    let k1 = k - k0;
    let target0 = (total as f64 * k0 as f64 / k as f64).round() as NodeWeight;
    // Allow a relaxed imbalance during bisection so deeper levels can still balance out;
    // the per-side limits are proportional to the number of final blocks on each side.
    let slack = 1.0 + epsilon + 0.05;
    let max0 = ((total as f64 * k0 as f64 / k as f64) * slack).ceil() as NodeWeight;
    let max1 = ((total as f64 * k1 as f64 / k as f64) * slack).ceil() as NodeWeight;

    let best = best_bipartition(&sub, target0, [max0.max(1), max1.max(1)], config, seed);

    let mut left: Vec<NodeId> = Vec::new();
    let mut right: Vec<NodeId> = Vec::new();
    for (local, &orig) in original.iter().enumerate() {
        if best.side[local] {
            right.push(orig);
        } else {
            left.push(orig);
        }
    }
    recurse(
        graph,
        &left,
        first_block,
        k0,
        epsilon,
        config,
        seed.wrapping_mul(31).wrapping_add(1),
        assignment,
    );
    recurse(
        graph,
        &right,
        first_block + k0,
        k1,
        epsilon,
        config,
        seed.wrapping_mul(31).wrapping_add(2),
        assignment,
    );
}

/// Runs the bisection portfolio and returns the best balanced result (or, failing that,
/// the result with the lowest cut).
fn best_bipartition(
    sub: &CsrGraph,
    target0: NodeWeight,
    max_weight: [NodeWeight; 2],
    config: &InitialPartitioningConfig,
    seed: u64,
) -> Bipartition {
    let mut best: Option<(bool, u64, Bipartition)> = None;
    for attempt in 0..config.attempts.max(1) {
        let attempt_seed = seed ^ (attempt as u64).wrapping_mul(0x9E37_79B9);
        let candidate = bipartition(sub, target0, max_weight, config.fm_passes, attempt_seed);
        let balanced = candidate.weight0 <= max_weight[0] && candidate.weight1 <= max_weight[1];
        let cut = candidate.cut(sub);
        let better = match &best {
            None => true,
            Some((best_balanced, best_cut, _)) => {
                (balanced && !best_balanced) || (balanced == *best_balanced && cut < *best_cut)
            }
        };
        if better {
            best = Some((balanced, cut, candidate));
        }
    }
    best.expect("at least one bisection attempt").2
}

/// Extracts the subgraph induced by `vertices`.
///
/// Returns the subgraph (with vertices renumbered to `0..vertices.len()`) and the list of
/// original vertex IDs (`original[local] = global`).
pub fn induced_subgraph(graph: &CsrGraph, vertices: &[NodeId]) -> (CsrGraph, Vec<NodeId>) {
    let mut local_of = vec![NodeId::MAX; graph.n()];
    for (local, &u) in vertices.iter().enumerate() {
        local_of[u as usize] = local as NodeId;
    }
    let node_weights: Vec<NodeWeight> = vertices.iter().map(|&u| graph.node_weight(u)).collect();
    let mut builder = CsrGraphBuilder::with_node_weights(node_weights);
    for (local, &u) in vertices.iter().enumerate() {
        graph.for_each_neighbor(u, &mut |v, w| {
            let lv = local_of[v as usize];
            if lv != NodeId::MAX && (local as NodeId) < lv {
                builder.add_edge(local as NodeId, lv, w);
            }
        });
    }
    (builder.build(), vertices.to_vec())
}

#[cfg(test)]
mod tests {
    use super::*;
    use graph::gen;

    #[test]
    fn induced_subgraph_keeps_internal_edges_only() {
        let g = gen::grid2d(4, 4);
        let vertices: Vec<NodeId> = vec![0, 1, 2, 3]; // the first row
        let (sub, original) = induced_subgraph(&g, &vertices);
        assert_eq!(sub.n(), 4);
        assert_eq!(sub.m(), 3); // a path along the row
        assert_eq!(original, vertices);
        assert_eq!(sub.total_node_weight(), 4);
    }

    #[test]
    fn initial_partition_is_complete_and_balanced() {
        let g = gen::grid2d(12, 12);
        for k in [2, 3, 4, 7, 8] {
            let p = initial_partition(&g, k, 0.05, &InitialPartitioningConfig::default(), 1);
            assert_eq!(p.k(), k);
            assert!(p.is_complete());
            assert_eq!(
                p.block_weights().iter().sum::<NodeWeight>(),
                g.total_node_weight()
            );
            assert!(
                p.imbalance() < 0.35,
                "k = {}: imbalance {} too high (block weights {:?})",
                k,
                p.imbalance(),
                p.block_weights()
            );
            assert!(p.edge_cut_on(&g) > 0);
        }
    }

    #[test]
    fn k_equals_one_puts_everything_in_one_block() {
        let g = gen::path(10);
        let p = initial_partition(&g, 1, 0.03, &InitialPartitioningConfig::default(), 3);
        assert!(p.assignment().iter().all(|&b| b == 0));
        assert_eq!(p.edge_cut_on(&g), 0);
    }

    #[test]
    fn clique_chain_is_cut_at_the_bridges() {
        // Four cliques of 8 vertices, k = 4: the ideal partition cuts the 3 bridges.
        let g = gen::clique_chain(4, 8);
        let p = initial_partition(
            &g,
            4,
            0.10,
            &InitialPartitioningConfig {
                attempts: 8,
                fm_passes: 4,
                seed: 1,
            },
            5,
        );
        let cut = p.edge_cut_on(&g);
        assert!(cut <= 12, "cut {} far from the optimum of 3", cut);
        assert!(p.imbalance() < 0.2);
    }

    #[test]
    fn weighted_graphs_are_balanced_by_weight() {
        let g = gen::with_random_node_weights(&gen::grid2d(10, 10), 5, 9);
        let p = initial_partition(&g, 4, 0.1, &InitialPartitioningConfig::default(), 2);
        assert!(p.is_complete());
        let max = p.block_weights().iter().max().copied().unwrap();
        let avg = g.total_node_weight() / 4;
        assert!(
            max as f64 <= 1.5 * avg as f64,
            "max block {} vs avg {}",
            max,
            avg
        );
    }

    #[test]
    fn deterministic_for_fixed_seed() {
        let g = gen::erdos_renyi(200, 800, 3);
        let config = InitialPartitioningConfig::default();
        let a = initial_partition(&g, 6, 0.03, &config, 42);
        let b = initial_partition(&g, 6, 0.03, &config, 42);
        assert_eq!(a.assignment(), b.assignment());
    }
}
