//! Initial partitioning of the coarsest graph.
//!
//! KaMinPar partitions the coarsest graph with a portfolio of randomized greedy graph
//! growing heuristics refined by 2-way FM (paper §II-B), recursing to obtain `k` blocks.
//! The coarsest graph has `O(contraction_limit · k)` vertices, so the stage is cheap in
//! memory — but it sits on the critical path, so this implementation treats it the way
//! the paper treats every other phase: **task-parallel** and **allocation-free**.
//!
//! * The two child recursions of each bisection and the independent portfolio attempts
//!   run in parallel via [`rayon::join`], with the thread budget split between branches.
//! * The whole bisection tree works on **one** vertex permutation
//!   (`InitialPartitioningScratch::tree_vertices`): each bisection stably partitions its
//!   slice in place and recurses on the two disjoint subslices, so no per-node vertex
//!   lists are ever allocated.
//! * Induced subgraphs are extracted into pooled raw-CSR buffers through an
//!   epoch-tagged membership map (see [`scratch`]) instead of the validating
//!   `CsrGraphBuilder` path that hashed, deduplicated and re-sorted every subgraph.
//! * Results are **bit-identical for a fixed seed at any thread count**: every subtree
//!   derives its RNG stream from the root seed and its path in the bisection tree,
//!   every attempt from the subtree seed and its attempt index, and the portfolio
//!   winner is selected by a total order (`balanced`, `cut`, attempt index`) that does
//!   not depend on completion order.

pub mod bipartition;
pub mod scratch;

use graph::csr::{CsrGraph, CsrGraphBuilder};
use graph::traits::Graph;
use graph::{EdgeWeight, NodeId, NodeWeight};

use crate::context::InitialPartitioningConfig;
use crate::partition::{BlockId, Partition};
use crate::scratch::{HierarchyScratch, SharedSlice};

pub use bipartition::Bipartition;

use bipartition::{bipartition_into, cut_of};
use scratch::{AttemptWorkspace, InitialPartitioningScratch, SubgraphView};

/// Computes an initial `k`-way partition of `graph` via recursive bisection, using a
/// throwaway scratch arena. Prefer [`initial_partition_with_scratch`] inside the
/// multilevel pipeline.
pub fn initial_partition(
    graph: &CsrGraph,
    k: usize,
    epsilon: f64,
    config: &InitialPartitioningConfig,
    seed: u64,
) -> Partition {
    let mut scratch = HierarchyScratch::new();
    initial_partition_with_scratch(graph, k, epsilon, config, seed, &mut scratch)
}

/// Computes an initial `k`-way partition of `graph` via parallel recursive bisection,
/// reusing the initial-partitioning region of `scratch` across the whole bisection tree.
pub fn initial_partition_with_scratch(
    graph: &CsrGraph,
    k: usize,
    epsilon: f64,
    config: &InitialPartitioningConfig,
    seed: u64,
    scratch: &mut HierarchyScratch,
) -> Partition {
    assert!(k >= 1);
    let n = graph.n();
    let mut assignment: Vec<BlockId> = vec![0; n];
    if k > 1 && n > 0 {
        scratch.initial.ensure(n);
        // Install the run's observability handle so the recursion can count
        // bisections/attempts; reset to whatever the current run uses (noop by default).
        scratch.initial.obs = scratch.obs.clone();
        // The tree permutation is partitioned in place; take it out of the scratch so
        // the recursion can hold `&mut` slices of it alongside `&scratch.initial`.
        let mut vertices = std::mem::take(&mut scratch.initial.tree_vertices);
        vertices.clear();
        vertices.extend(0..n as NodeId);
        {
            let shared = SharedSlice::new(&mut assignment);
            recurse(
                graph,
                &mut vertices,
                0,
                k,
                epsilon,
                config,
                seed,
                &shared,
                &scratch.initial,
            );
        }
        scratch.initial.tree_vertices = vertices;
        // The pooled workspaces have no user past this point; free them so the standing
        // footprint through uncoarsening stays node-indexed (see `release_pools`).
        scratch.initial.release_pools();
        scratch.recharge();
    }
    let mut partition = Partition::from_assignment(graph, k, epsilon, assignment);
    let cut = partition.edge_cut_on(graph);
    partition.set_cached_cut(cut);
    partition
}

/// Whether a task over `len` vertices is worth a parallel fork under `config`.
fn should_fork(config: &InitialPartitioningConfig, len: usize) -> bool {
    config.parallel && len >= config.parallel_grain && rayon::current_num_threads() > 1
}

/// Recursively bisects the subgraph induced by the `vertices` slice into blocks
/// `[first_block, first_block + k)`, writing the result through `assignment`.
///
/// The slice is stably partitioned in place by the chosen bipartition, so the two child
/// recursions operate on disjoint subslices (and disjoint `assignment` indices), which
/// is what makes the parallel fork sound.
#[allow(clippy::too_many_arguments)]
fn recurse(
    graph: &CsrGraph,
    vertices: &mut [NodeId],
    first_block: usize,
    k: usize,
    epsilon: f64,
    config: &InitialPartitioningConfig,
    seed: u64,
    assignment: &SharedSlice<BlockId>,
    scratch: &InitialPartitioningScratch,
) {
    if k == 1 || vertices.is_empty() {
        for &u in vertices.iter() {
            // SAFETY: sibling recursions hold disjoint vertex sets, so each index is
            // written by exactly one task.
            unsafe { assignment.write(u as usize, first_block as BlockId) };
        }
        return;
    }
    let mut ws = scratch.checkout_bisection();
    ws.extract(graph, vertices, scratch);
    let total = ws.total_node_weight;
    let k0 = k.div_ceil(2);
    let k1 = k - k0;
    let target0 = (total as f64 * k0 as f64 / k as f64).round() as NodeWeight;
    // Allow a relaxed imbalance during bisection so deeper levels can still balance out;
    // the per-side limits are proportional to the number of final blocks on each side.
    let slack = 1.0 + epsilon + 0.05;
    let max0 = ((total as f64 * k0 as f64 / k as f64) * slack).ceil() as NodeWeight;
    let max1 = ((total as f64 * k1 as f64 / k as f64) * slack).ceil() as NodeWeight;

    let best = best_bipartition(
        &ws.view(),
        target0,
        [max0.max(1), max1.max(1)],
        config,
        seed,
        scratch,
    );
    scratch.obs.add(obs::Counter::InitialBisections, 1);

    // Stable in-place partition of the slice: side-0 vertices first, side-1 after,
    // relative order preserved on both sides (keeps the slices ascending, which the
    // subgraph extraction relies on).
    ws.right_tmp.clear();
    let mut write = 0usize;
    for local in 0..vertices.len() {
        let u = vertices[local];
        if best.side[local] {
            ws.right_tmp.push(u);
        } else {
            vertices[write] = u;
            write += 1;
        }
    }
    vertices[write..].copy_from_slice(&ws.right_tmp);
    scratch.release_attempt(best);
    scratch.release_bisection(ws);

    let (left, right) = vertices.split_at_mut(write);
    let seed0 = seed.wrapping_mul(31).wrapping_add(1);
    let seed1 = seed.wrapping_mul(31).wrapping_add(2);
    if should_fork(config, left.len().min(right.len())) {
        rayon::join(
            || {
                recurse(
                    graph,
                    left,
                    first_block,
                    k0,
                    epsilon,
                    config,
                    seed0,
                    assignment,
                    scratch,
                )
            },
            || {
                recurse(
                    graph,
                    right,
                    first_block + k0,
                    k1,
                    epsilon,
                    config,
                    seed1,
                    assignment,
                    scratch,
                )
            },
        );
    } else {
        recurse(
            graph,
            left,
            first_block,
            k0,
            epsilon,
            config,
            seed0,
            assignment,
            scratch,
        );
        recurse(
            graph,
            right,
            first_block + k0,
            k1,
            epsilon,
            config,
            seed1,
            assignment,
            scratch,
        );
    }
}

/// Portfolio-selection key: balanced results beat imbalanced ones, then lower cut wins,
/// then the lower attempt index — a total order, so the winner is independent of the
/// order in which parallel attempts complete.
type AttemptKey = (bool, EdgeWeight, usize);

/// Runs the bisection portfolio and returns the winning attempt's workspace (holding the
/// best balanced result or, failing that, the result with the lowest cut).
fn best_bipartition(
    sub: &SubgraphView<'_>,
    target0: NodeWeight,
    max_weight: [NodeWeight; 2],
    config: &InitialPartitioningConfig,
    seed: u64,
    scratch: &InitialPartitioningScratch,
) -> AttemptWorkspace {
    let attempts = config.attempts.max(1);
    let (_, best) = attempt_range(sub, target0, max_weight, config, seed, scratch, 0, attempts);
    best
}

/// Runs attempts `[begin, end)`, forking the range in half while the subgraph is large
/// enough, and returns the winner by [`AttemptKey`].
#[allow(clippy::too_many_arguments)]
fn attempt_range(
    sub: &SubgraphView<'_>,
    target0: NodeWeight,
    max_weight: [NodeWeight; 2],
    config: &InitialPartitioningConfig,
    seed: u64,
    scratch: &InitialPartitioningScratch,
    begin: usize,
    end: usize,
) -> (AttemptKey, AttemptWorkspace) {
    if end - begin > 1 && should_fork(config, sub.n()) {
        let mid = begin + (end - begin) / 2;
        let (a, b) = rayon::join(
            || attempt_range(sub, target0, max_weight, config, seed, scratch, begin, mid),
            || attempt_range(sub, target0, max_weight, config, seed, scratch, mid, end),
        );
        let (winner, loser) = if a.0 <= b.0 { (a, b) } else { (b, a) };
        scratch.release_attempt(loser.1);
        return winner;
    }
    let mut best: Option<(AttemptKey, AttemptWorkspace)> = None;
    let mut ws = scratch.checkout_attempt();
    scratch
        .obs
        .add(obs::Counter::InitialAttempts, (end - begin) as u64);
    for attempt in begin..end {
        let attempt_seed = seed ^ (attempt as u64).wrapping_mul(0x9E37_79B9);
        bipartition_into(
            sub,
            target0,
            max_weight,
            config.fm_passes,
            attempt_seed,
            &mut ws,
        );
        let balanced = ws.weight0 <= max_weight[0] && ws.weight1 <= max_weight[1];
        let key: AttemptKey = (!balanced, cut_of(sub, &ws.side), attempt);
        match &best {
            Some((best_key, _)) if *best_key <= key => {} // keep the incumbent
            _ => {
                // The candidate wins: swap it in and reuse the loser as the next buffer.
                let loser = match best.take() {
                    Some((_, prev)) => prev,
                    None => scratch.checkout_attempt(),
                };
                best = Some((key, std::mem::replace(&mut ws, loser)));
            }
        }
    }
    scratch.release_attempt(ws);
    best.expect("at least one bisection attempt")
}

/// Extracts the subgraph induced by `vertices` through the validating builder path.
///
/// Returns the subgraph (with vertices renumbered to `0..vertices.len()`) and the list
/// of original vertex IDs (`original[local] = global`). This is the allocation-heavy
/// reference implementation the scratch-backed extraction
/// ([`scratch::BisectionWorkspace`]) is property-tested against; the hot path no longer
/// uses it.
pub fn induced_subgraph(graph: &CsrGraph, vertices: &[NodeId]) -> (CsrGraph, Vec<NodeId>) {
    let mut local_of = vec![NodeId::MAX; graph.n()];
    for (local, &u) in vertices.iter().enumerate() {
        local_of[u as usize] = local as NodeId;
    }
    let node_weights: Vec<NodeWeight> = vertices.iter().map(|&u| graph.node_weight(u)).collect();
    let mut builder = CsrGraphBuilder::with_node_weights(node_weights);
    for (local, &u) in vertices.iter().enumerate() {
        graph.for_each_neighbor(u, &mut |v, w| {
            let lv = local_of[v as usize];
            if lv != NodeId::MAX && (local as NodeId) < lv {
                builder.add_edge(local as NodeId, lv, w);
            }
        });
    }
    (builder.build(), vertices.to_vec())
}

#[cfg(test)]
mod tests {
    use super::*;
    use graph::gen;
    use proptest::prelude::*;

    #[test]
    fn induced_subgraph_keeps_internal_edges_only() {
        let g = gen::grid2d(4, 4);
        let vertices: Vec<NodeId> = vec![0, 1, 2, 3]; // the first row
        let (sub, original) = induced_subgraph(&g, &vertices);
        assert_eq!(sub.n(), 4);
        assert_eq!(sub.m(), 3); // a path along the row
        assert_eq!(original, vertices);
        assert_eq!(sub.total_node_weight(), 4);
    }

    #[test]
    fn initial_partition_is_complete_and_balanced() {
        let g = gen::grid2d(12, 12);
        for k in [2, 3, 4, 7, 8] {
            let p = initial_partition(&g, k, 0.05, &InitialPartitioningConfig::default(), 1);
            assert_eq!(p.k(), k);
            assert!(p.is_complete());
            assert_eq!(
                p.block_weights().iter().sum::<NodeWeight>(),
                g.total_node_weight()
            );
            assert!(
                p.imbalance() < 0.35,
                "k = {}: imbalance {} too high (block weights {:?})",
                k,
                p.imbalance(),
                p.block_weights()
            );
            assert!(p.edge_cut_on(&g) > 0);
        }
    }

    #[test]
    fn k_equals_one_puts_everything_in_one_block() {
        let g = gen::path(10);
        let p = initial_partition(&g, 1, 0.03, &InitialPartitioningConfig::default(), 3);
        assert!(p.assignment().iter().all(|&b| b == 0));
        assert_eq!(p.edge_cut_on(&g), 0);
    }

    #[test]
    fn clique_chain_is_cut_at_the_bridges() {
        // Four cliques of 8 vertices, k = 4: the ideal partition cuts the 3 bridges.
        let g = gen::clique_chain(4, 8);
        let p = initial_partition(
            &g,
            4,
            0.10,
            &InitialPartitioningConfig {
                attempts: 8,
                fm_passes: 4,
                ..InitialPartitioningConfig::default()
            },
            5,
        );
        let cut = p.edge_cut_on(&g);
        assert!(cut <= 12, "cut {} far from the optimum of 3", cut);
        assert!(p.imbalance() < 0.2);
    }

    #[test]
    fn weighted_graphs_are_balanced_by_weight() {
        let g = gen::with_random_node_weights(&gen::grid2d(10, 10), 5, 9);
        let p = initial_partition(&g, 4, 0.1, &InitialPartitioningConfig::default(), 2);
        assert!(p.is_complete());
        let max = p.block_weights().iter().max().copied().unwrap();
        let avg = g.total_node_weight() / 4;
        assert!(
            max as f64 <= 1.5 * avg as f64,
            "max block {} vs avg {}",
            max,
            avg
        );
    }

    #[test]
    fn deterministic_for_fixed_seed() {
        let g = gen::erdos_renyi(200, 800, 3);
        let config = InitialPartitioningConfig::default();
        let a = initial_partition(&g, 6, 0.03, &config, 42);
        let b = initial_partition(&g, 6, 0.03, &config, 42);
        assert_eq!(a.assignment(), b.assignment());
    }

    #[test]
    fn deterministic_across_thread_counts() {
        // The tentpole guarantee: the parallel portfolio/recursion produces the same
        // assignment at every thread count, because RNG streams derive from the seed
        // path and the portfolio winner is selected by a total order. The grain is
        // forced to 0 so even this small instance actually forks tasks.
        let g = gen::rgg2d(2_000, 10, 13);
        let config = InitialPartitioningConfig {
            parallel_grain: 0,
            ..InitialPartitioningConfig::default()
        };
        let reference = {
            let pool = rayon::ThreadPoolBuilder::new()
                .num_threads(1)
                .build()
                .unwrap();
            pool.install(|| initial_partition(&g, 8, 0.03, &config, 99))
        };
        for threads in [2, 3, 4, 8] {
            let pool = rayon::ThreadPoolBuilder::new()
                .num_threads(threads)
                .build()
                .unwrap();
            let p = pool.install(|| initial_partition(&g, 8, 0.03, &config, 99));
            assert_eq!(
                p.assignment(),
                reference.assignment(),
                "assignment diverged at {} threads",
                threads
            );
        }
    }

    #[test]
    fn scratch_reuse_across_runs_is_deterministic() {
        // One arena serving several runs must not leak state between them.
        let g = gen::erdos_renyi(500, 2_500, 7);
        let config = InitialPartitioningConfig::default();
        let mut scratch = HierarchyScratch::new();
        let a = initial_partition_with_scratch(&g, 6, 0.03, &config, 11, &mut scratch);
        let b = initial_partition_with_scratch(&g, 6, 0.03, &config, 11, &mut scratch);
        assert_eq!(a.assignment(), b.assignment());
        // And a different k through the same arena still works.
        let c = initial_partition_with_scratch(&g, 3, 0.05, &config, 12, &mut scratch);
        assert!(c.is_complete());
    }

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(24))]
        #[test]
        fn prop_scratch_extraction_matches_builder_path(
            n in 8usize..120,
            extra_edges in 0usize..300,
            keep_modulus in 2u32..5,
            graph_seed in 0u64..1_000,
        ) {
            let g = gen::erdos_renyi(n, n + extra_edges, graph_seed);
            let vertices: Vec<NodeId> = (0..g.n() as NodeId)
                .filter(|u| u % NodeId::from(keep_modulus) != 0)
                .collect();
            let (reference, _) = induced_subgraph(&g, &vertices);
            let mut ip = InitialPartitioningScratch::default();
            ip.ensure(g.n());
            let mut ws = ip.checkout_bisection();
            ws.extract(&g, &vertices, &ip);
            let view = ws.view();
            prop_assert_eq!(view.n(), reference.n());
            prop_assert_eq!(view.m(), reference.m());
            prop_assert_eq!(view.total_node_weight(), reference.total_node_weight());
            prop_assert_eq!(view.total_edge_weight(), reference.total_edge_weight());
            for u in 0..reference.n() as NodeId {
                prop_assert_eq!(view.neighbors_vec(u), reference.neighbors_vec(u));
                prop_assert_eq!(view.node_weight(u), reference.node_weight(u));
                prop_assert_eq!(view.degree(u), reference.degree(u));
            }
        }
    }

    // Compile-time check that the Bipartition re-export stays public API.
    #[allow(dead_code)]
    fn bipartition_type_is_reexported(b: Bipartition) -> Vec<bool> {
        b.side
    }
}
