//! Scratch memory for the recursive-bisection engine.
//!
//! The bisection tree has `2k - 1` nodes, and the seed implementation allocated a fresh
//! induced subgraph (via the validating `CsrGraphBuilder`, including a hash-map edge
//! dedup and a full sorted rebuild), a fresh `O(n)` global-to-local map, and fresh
//! per-attempt side/weight/heap buffers at *every* node. [`InitialPartitioningScratch`]
//! replaces all of that with arena-style reuse:
//!
//! * a single **epoch-tagged membership map** (`InitialPartitioningScratch::local_of`)
//!   shared by every tree node: each bisection claims a fresh epoch from a monotonic
//!   counter and stores `(epoch, local_id)` packed into one atomic word per vertex, so
//!   membership tests never require clearing and concurrent sibling subtrees (which
//!   touch disjoint vertex sets) cannot observe each other's entries as their own;
//! * a pool of [`BisectionWorkspace`]s holding raw CSR buffers that induced subgraphs
//!   are extracted into directly — no builder, no hashing, no re-sorting (the global
//!   vertex order is ascending, so extracted neighbourhoods stay sorted for free);
//! * a pool of [`AttemptWorkspace`]s holding the side/gain/heap/stamp buffers of one
//!   greedy-growing + 2-way-FM portfolio attempt.
//!
//! Pools hand out workspaces to concurrently running tasks and take them back when the
//! task finishes, so the number of live workspaces is bounded by the number of running
//! tasks (≤ thread count), not by the tree size. Buffers only ever grow; the root
//! bisection (the largest subgraph) sizes them and the rest of the tree runs
//! allocation-free.

use std::collections::BinaryHeap;
use std::sync::atomic::{AtomicU64, AtomicUsize, Ordering};

use graph::traits::Graph;
use graph::{AtomicNodeId, EdgeId, EdgeWeight, NodeId, NodeWeight};
use parking_lot::Mutex;

/// Reusable scratch for one run's whole bisection tree (a region of
/// [`HierarchyScratch`](crate::scratch::HierarchyScratch)).
#[derive(Debug, Default)]
pub struct InitialPartitioningScratch {
    /// Per global vertex: the epoch of the bisection that last tagged it. A vertex
    /// belongs to the subgraph of the bisection holding `epoch` iff the entry matches;
    /// stale entries from earlier (or concurrent sibling) bisections never match
    /// because epochs are unique. Split from the local ID (instead of the former
    /// `(epoch << 32) | local_id` packing) so the local half scales with the active
    /// [`NodeId`] width; the epoch store/load pair carries release/acquire ordering so
    /// a matching epoch guarantees the corresponding local ID is visible.
    local_epoch: Vec<AtomicU64>,
    /// Per global vertex: the local ID under `local_epoch[u]`.
    local_id: Vec<AtomicNodeId>,
    /// Monotonic epoch source; 0 is reserved for "never written".
    epoch: AtomicU64,
    /// The vertex permutation the bisection tree partitions in place; child recursions
    /// operate on disjoint subslices of this single buffer.
    pub(crate) tree_vertices: Vec<NodeId>,
    /// Pool of induced-subgraph buffers.
    bisections: Mutex<Vec<BisectionWorkspace>>,
    /// Pool of portfolio-attempt buffers.
    attempts: Mutex<Vec<AttemptWorkspace>>,
    /// Heap bytes currently parked in the two pools (updated on release).
    pool_bytes: AtomicUsize,
    /// Observability handle for the current run, installed by
    /// [`initial_partition_with_scratch`](crate::initial::initial_partition_with_scratch)
    /// so the recursion can bump bisection/attempt counters without widening every
    /// signature. Counter sums are scheduling-independent, so the parallel tree may
    /// bump them from any task.
    pub(crate) obs: obs::ObsHandle,
}

impl InitialPartitioningScratch {
    /// Grows the membership map to `n` vertices. Does not shrink.
    pub fn ensure(&mut self, n: usize) {
        if self.local_epoch.len() < n {
            self.local_epoch.resize_with(n, || AtomicU64::new(0));
            self.local_id.resize_with(n, || AtomicNodeId::new(0));
        }
    }

    /// Claims a fresh, globally unique epoch for one bisection node.
    pub(crate) fn next_epoch(&self) -> u64 {
        self.epoch.fetch_add(1, Ordering::Relaxed) + 1
    }

    /// Tags `vertices[local] = u` with `epoch` in the membership map.
    ///
    /// The local ID is published *before* the epoch (release): a reader that observes
    /// the matching epoch (acquire) therefore observes the matching local ID. Slots are
    /// only ever written by the one task whose vertex set contains them — concurrent
    /// sibling subtrees touch disjoint sets — so a racing reader under a different
    /// epoch can at worst observe a foreign epoch value, which never matches its own.
    pub(crate) fn tag_members(&self, epoch: u64, vertices: &[NodeId]) {
        for (local, &u) in vertices.iter().enumerate() {
            self.local_id[u as usize].store(local as NodeId, Ordering::Relaxed);
            self.local_epoch[u as usize].store(epoch, Ordering::Release);
        }
    }

    /// Returns `u`'s local ID under `epoch`, or `None` if `u` is outside the subgraph.
    #[inline]
    pub(crate) fn local(&self, epoch: u64, u: NodeId) -> Option<NodeId> {
        (self.local_epoch[u as usize].load(Ordering::Acquire) == epoch)
            .then(|| self.local_id[u as usize].load(Ordering::Relaxed))
    }

    /// Checks out a bisection workspace (fresh if the pool is empty).
    pub(crate) fn checkout_bisection(&self) -> BisectionWorkspace {
        match self.bisections.lock().pop() {
            Some(ws) => {
                self.pool_bytes
                    .fetch_sub(ws.memory_bytes(), Ordering::Relaxed);
                ws
            }
            None => Default::default(),
        }
    }

    /// Returns a bisection workspace to the pool.
    pub(crate) fn release_bisection(&self, ws: BisectionWorkspace) {
        self.pool_bytes
            .fetch_add(ws.memory_bytes(), Ordering::Relaxed);
        self.bisections.lock().push(ws);
    }

    /// Checks out an attempt workspace (fresh if the pool is empty).
    pub(crate) fn checkout_attempt(&self) -> AttemptWorkspace {
        match self.attempts.lock().pop() {
            Some(ws) => {
                self.pool_bytes
                    .fetch_sub(ws.memory_bytes(), Ordering::Relaxed);
                ws
            }
            None => Default::default(),
        }
    }

    /// Returns an attempt workspace to the pool.
    pub(crate) fn release_attempt(&self, ws: AttemptWorkspace) {
        self.pool_bytes
            .fetch_add(ws.memory_bytes(), Ordering::Relaxed);
        self.attempts.lock().push(ws);
    }

    /// Heap bytes of the node-indexed structures (membership map + tree permutation).
    ///
    /// The pooled workspace buffers are *not* part of this figure — like the
    /// over-reserved contraction edge buffers, they are working memory sized by the
    /// largest task rather than node-indexed state, are excluded from the standing
    /// memtrack charge, and are freed when the stage ends ([`Self::release_pools`]).
    /// [`Self::pool_bytes`] exposes their current footprint for introspection.
    pub fn memory_bytes(&self) -> usize {
        self.local_epoch.len() * std::mem::size_of::<AtomicU64>()
            + self.local_id.len() * std::mem::size_of::<AtomicNodeId>()
            + self.tree_vertices.capacity() * std::mem::size_of::<NodeId>()
    }

    /// Heap bytes currently parked in the workspace pools.
    pub fn pool_bytes(&self) -> usize {
        self.pool_bytes.load(Ordering::Relaxed)
    }

    /// Frees the pooled workspaces. Called when initial partitioning ends: the pools'
    /// only user is the bisection tree, and holding root-subgraph-sized CSR and heap
    /// buffers through the whole uncoarsening phase would inflate the resident
    /// footprint for zero reuse benefit. The membership map is kept — a later run
    /// through the same arena re-grows only the pools.
    pub fn release_pools(&mut self) {
        self.bisections.get_mut().clear();
        self.attempts.get_mut().clear();
        self.pool_bytes.store(0, Ordering::Relaxed);
    }
}

/// Buffers of one bisection-tree node: the induced subgraph in raw CSR form plus the
/// temporary used by the in-place stable partition of the vertex slice.
#[derive(Debug, Default)]
pub struct BisectionWorkspace {
    /// CSR offsets of the induced subgraph; length `n_sub + 1`.
    pub(crate) xadj: Vec<EdgeId>,
    /// CSR neighbour array (local IDs).
    pub(crate) adjacency: Vec<NodeId>,
    /// Edge weights parallel to `adjacency` (always populated, 1s for unweighted input).
    pub(crate) edge_weights: Vec<EdgeWeight>,
    /// Node weights of the subgraph vertices.
    pub(crate) node_weights: Vec<NodeWeight>,
    /// Total node weight (cached at extraction).
    pub(crate) total_node_weight: NodeWeight,
    /// Total edge weight (cached at extraction; undirected edges counted once).
    pub(crate) total_edge_weight: EdgeWeight,
    /// Maximum degree (cached at extraction).
    pub(crate) max_degree: usize,
    /// Stable-partition temporary for the side-1 vertices of the chosen bipartition.
    pub(crate) right_tmp: Vec<NodeId>,
}

impl BisectionWorkspace {
    /// Heap bytes held by the workspace buffers.
    pub fn memory_bytes(&self) -> usize {
        self.xadj.capacity() * std::mem::size_of::<EdgeId>()
            + self.adjacency.capacity() * std::mem::size_of::<NodeId>()
            + self.edge_weights.capacity() * std::mem::size_of::<EdgeWeight>()
            + self.node_weights.capacity() * std::mem::size_of::<NodeWeight>()
            + self.right_tmp.capacity() * std::mem::size_of::<NodeId>()
    }

    /// Extracts the subgraph induced by `vertices` into this workspace's buffers and
    /// returns the epoch tag under which the membership map addresses it.
    ///
    /// `vertices` must be ascending (the bisection tree maintains this invariant by
    /// partitioning stably), so extracted neighbourhoods remain sorted by local ID
    /// whenever the input graph's neighbourhoods are sorted by global ID.
    pub(crate) fn extract(
        &mut self,
        graph: &impl Graph,
        vertices: &[NodeId],
        scratch: &InitialPartitioningScratch,
    ) -> u64 {
        let n_sub = vertices.len();
        let epoch = scratch.next_epoch();
        scratch.tag_members(epoch, vertices);

        // Single pass: neighbourhoods are appended directly and each vertex's offset is
        // recorded afterwards, so every half-edge pays exactly one membership lookup.
        // The buffers are pooled, so growth beyond the reused capacity is a one-time
        // cost of the largest (root) bisection.
        self.xadj.clear();
        self.xadj.reserve(n_sub + 1);
        self.node_weights.clear();
        self.node_weights.reserve(n_sub);
        self.adjacency.clear();
        self.edge_weights.clear();
        let mut total_node_weight: NodeWeight = 0;
        let mut total_edge_weight: EdgeWeight = 0;
        let mut max_degree = 0usize;
        self.xadj.push(0);
        for &u in vertices {
            let before = self.adjacency.len();
            let adjacency = &mut self.adjacency;
            let edge_weights = &mut self.edge_weights;
            graph.for_each_neighbor(u, &mut |v, w| {
                if let Some(local) = scratch.local(epoch, v) {
                    adjacency.push(local);
                    edge_weights.push(w);
                    total_edge_weight += w;
                }
            });
            max_degree = max_degree.max(self.adjacency.len() - before);
            self.xadj.push(self.adjacency.len() as EdgeId);
            let w = graph.node_weight(u);
            total_node_weight += w;
            self.node_weights.push(w);
        }
        self.total_node_weight = total_node_weight;
        self.total_edge_weight = total_edge_weight / 2;
        self.max_degree = max_degree;
        epoch
    }

    /// A [`Graph`] view of the extracted subgraph.
    pub(crate) fn view(&self) -> SubgraphView<'_> {
        SubgraphView { ws: self }
    }
}

/// Borrowed [`Graph`] implementation over a [`BisectionWorkspace`]'s CSR buffers, so the
/// bipartition routines (generic over `Graph`) run on the scratch-backed subgraph
/// without materialising a `CsrGraph`.
pub struct SubgraphView<'a> {
    ws: &'a BisectionWorkspace,
}

impl Graph for SubgraphView<'_> {
    fn n(&self) -> usize {
        self.ws.xadj.len().saturating_sub(1)
    }

    fn m(&self) -> usize {
        self.ws.adjacency.len() / 2
    }

    fn degree(&self, u: NodeId) -> usize {
        (self.ws.xadj[u as usize + 1] - self.ws.xadj[u as usize]) as usize
    }

    fn node_weight(&self, u: NodeId) -> NodeWeight {
        self.ws.node_weights[u as usize]
    }

    fn total_node_weight(&self) -> NodeWeight {
        self.ws.total_node_weight
    }

    fn total_edge_weight(&self) -> EdgeWeight {
        self.ws.total_edge_weight
    }

    fn for_each_neighbor(&self, u: NodeId, f: &mut dyn FnMut(NodeId, EdgeWeight)) {
        let begin = self.ws.xadj[u as usize] as usize;
        let end = self.ws.xadj[u as usize + 1] as usize;
        for e in begin..end {
            f(self.ws.adjacency[e], self.ws.edge_weights[e]);
        }
    }

    fn is_edge_weighted(&self) -> bool {
        true
    }

    fn is_node_weighted(&self) -> bool {
        true
    }

    fn max_degree(&self) -> usize {
        self.ws.max_degree
    }
}

/// Buffers of one greedy-growing + 2-way-FM portfolio attempt. The attempt's resulting
/// bipartition lives in `AttemptWorkspace::side` / the two weights, so the winning
/// attempt's workspace doubles as the result carrier — no copy on the way out.
#[derive(Debug, Default)]
pub struct AttemptWorkspace {
    /// Side of each subgraph vertex (`true` = block 1).
    pub(crate) side: Vec<bool>,
    /// Total node weight on side 0.
    pub(crate) weight0: NodeWeight,
    /// Total node weight on side 1.
    pub(crate) weight1: NodeWeight,
    /// Growing: whether a vertex has been assigned to block 0's region yet.
    pub(crate) assigned: Vec<bool>,
    /// Restart order for greedy growing (shuffled per attempt).
    pub(crate) order: Vec<NodeId>,
    /// Shared max-heap: `(priority, vertex, stamp)`. Growing uses it as the frontier
    /// (stamp 0); FM uses it as the gain queue with lazy invalidation via stamps.
    pub(crate) heap: BinaryHeap<(i64, NodeId, u32)>,
    /// FM: current gain of each vertex (maintained incrementally).
    pub(crate) gains: Vec<i64>,
    /// FM: latest stamp per vertex; heap entries with older stamps are stale.
    pub(crate) stamp: Vec<u32>,
    /// FM: vertices already moved in the current pass.
    pub(crate) locked: Vec<bool>,
    /// FM: move log for best-prefix rollback.
    pub(crate) moves: Vec<NodeId>,
}

impl AttemptWorkspace {
    /// Heap bytes held by the workspace buffers.
    pub fn memory_bytes(&self) -> usize {
        self.side.capacity()
            + self.assigned.capacity()
            + self.locked.capacity()
            + self.order.capacity() * std::mem::size_of::<NodeId>()
            + self.moves.capacity() * std::mem::size_of::<NodeId>()
            + self.heap.capacity() * std::mem::size_of::<(i64, NodeId, u32)>()
            + self.gains.capacity() * std::mem::size_of::<i64>()
            + self.stamp.capacity() * std::mem::size_of::<u32>()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use graph::gen;

    #[test]
    fn epoch_tags_keep_stale_entries_invisible() {
        let mut scratch = InitialPartitioningScratch::default();
        scratch.ensure(10);
        let e1 = scratch.next_epoch();
        scratch.tag_members(e1, &[2, 5, 7]);
        assert_eq!(scratch.local(e1, 5), Some(1));
        assert_eq!(scratch.local(e1, 3), None);
        // A later bisection over an overlapping set must not see e1's entries.
        let e2 = scratch.next_epoch();
        scratch.tag_members(e2, &[5]);
        assert_eq!(scratch.local(e2, 5), Some(0));
        assert_eq!(
            scratch.local(e2, 2),
            None,
            "stale entry from epoch 1 leaked"
        );
        assert_eq!(scratch.local(e1, 2), Some(0), "old epoch still addressable");
    }

    #[test]
    fn extract_matches_the_reference_extraction() {
        let g = gen::rgg2d(300, 8, 11);
        let vertices: Vec<NodeId> = (0..g.n() as NodeId).filter(|u| u % 3 != 0).collect();
        let (reference, original) = crate::initial::induced_subgraph(&g, &vertices);
        let mut scratch = InitialPartitioningScratch::default();
        scratch.ensure(g.n());
        let mut ws = scratch.checkout_bisection();
        ws.extract(&g, &vertices, &scratch);
        let view = ws.view();
        assert_eq!(view.n(), reference.n());
        assert_eq!(view.m(), reference.m());
        assert_eq!(view.total_node_weight(), reference.total_node_weight());
        assert_eq!(view.total_edge_weight(), reference.total_edge_weight());
        assert_eq!(original, vertices);
        for u in 0..reference.n() as NodeId {
            assert_eq!(
                view.neighbors_vec(u),
                reference.neighbors_vec(u),
                "vertex {u}"
            );
        }
    }

    #[test]
    fn pools_reuse_workspace_buffers() {
        let mut scratch = InitialPartitioningScratch::default();
        let mut ws = scratch.checkout_attempt();
        ws.order.reserve(1000);
        let capacity = ws.order.capacity();
        scratch.release_attempt(ws);
        assert!(scratch.pool_bytes() >= capacity * std::mem::size_of::<NodeId>());
        let ws = scratch.checkout_attempt();
        assert_eq!(
            ws.order.capacity(),
            capacity,
            "pooled buffer must come back"
        );
        scratch.release_attempt(ws);
        scratch.release_pools();
        assert_eq!(scratch.pool_bytes(), 0);
        let ws = scratch.checkout_attempt();
        assert_eq!(ws.order.capacity(), 0, "released pools start fresh");
        scratch.release_attempt(ws);
    }
}
