//! TeraPart: memory-efficient shared-memory multilevel graph partitioning.
//!
//! This crate is the reproduction of the paper's primary contribution. It implements the
//! KaMinPar-style deep multilevel partitioning pipeline together with the three TeraPart
//! optimizations:
//!
//! 1. **Two-phase label propagation** clustering ([`coarsening::lp_clustering`]), which
//!    replaces the per-thread `O(n)` rating maps with small fixed-capacity hash tables and
//!    a single shared sparse array for "bumped" high-fanout vertices — `O(n + p·T_bump)`
//!    auxiliary memory instead of `O(n·p)` (paper §IV-A).
//! 2. **One-pass contraction** ([`mod@coarsening::contract`]), which writes the coarse graph's
//!    CSR arrays directly using an atomically updated dual counter instead of buffering
//!    the coarse edges twice (paper §IV-B).
//! 3. **Space-efficient gain tables** for parallel FM refinement
//!    ([`refinement::gain_table`]), using `O(m)` instead of `O(nk)` memory (paper §V).
//!
//! On top of these, the partitioner can run on either the uncompressed
//! [`CsrGraph`](graph::CsrGraph) or the compressed
//! [`CompressedGraph`](graph::CompressedGraph) (paper §III), because every algorithm is
//! generic over [`graph::Graph`].
//!
//! # Performance invariants
//!
//! * **Allocation-free hot paths.** One [`HierarchyScratch`] arena is created per run
//!   and reused by every coarsening level, every refinement level, and every node of
//!   the initial-partitioning bisection tree; the largest (first) level sizes it and
//!   everything after runs without heap allocation. The arena charges its node-indexed
//!   footprint to `memtrack`; over-reserved working buffers (contraction edge arrays,
//!   initial-partitioning workspace pools) are excluded from the standing charge and
//!   released when their phase ends.
//! * **Frontier-driven label propagation.** After the full first round, clustering and
//!   refinement revisit only vertices whose neighbourhood changed.
//! * **Deterministic parallel initial partitioning.** The recursive-bisection portfolio
//!   ([`initial`]) forks child recursions and portfolio attempts in parallel, yet a
//!   fixed seed produces a bit-identical assignment at any thread count: RNG streams
//!   derive from the seed's path through the bisection tree and the portfolio winner is
//!   selected by a total order. (Full-pipeline results still vary with the thread count
//!   because parallel label propagation applies moves in scheduling order.)
//!
//! # Quick start
//!
//! ```
//! use graph::gen;
//! use terapart::{PartitionerConfig, partition};
//!
//! let g = gen::grid2d(32, 32);
//! let config = PartitionerConfig::terapart(8); // 8 blocks, TeraPart optimizations on
//! let result = partition(&g, &config);
//! assert!(result.partition.is_balanced());
//! assert!(result.partition.edge_cut() > 0);
//! ```

pub mod coarsening;
pub mod context;
pub mod dual_counter;
pub mod engine;
pub mod error;
pub mod initial;
pub(crate) mod lp_rounds;
pub mod partition;
pub mod partitioner;
pub mod refinement;
pub mod scratch;

pub use context::{
    CoarseningConfig, ContractionAlgorithm, EdgeRating, GainTableKind, InitialPartitioningConfig,
    LabelPropagationMode, ObsConfig, OnDiskConfig, PartitionerConfig, Preset, RefinementAlgorithm,
    RefinementConfig,
};
pub use engine::{EngineConfig, PartitionEngine, PartitionRequest, ScratchLease, ScratchPool};
pub use error::PartitionError;
pub use initial::{initial_partition, initial_partition_with_scratch};
pub use partition::{BlockId, Partition};
pub use partitioner::{
    partition, partition_csr, partition_csr_with_tracker, partition_ondisk,
    partition_ondisk_with_tracker, partition_paged_with_tracker, partition_with_tracker,
    PartitionResult,
};
pub use scratch::{AtomicBitset, HierarchyScratch};

/// Retry/backoff policy of the on-disk page cache, re-exported for
/// [`PartitionerConfig::with_retry`].
pub use graph::store::RetryPolicy;

/// The shared-store surface of the engine API, re-exported from [`graph`]: the
/// `Arc`-shareable unified store handle, its per-request session view (poison
/// protocol), and the deduplicating open-store registry an engine owns.
pub use graph::store::{StoreHandle, StoreRegistry, StoreSession};

/// Observability surface, re-exported for [`PartitionerConfig::with_run_report`],
/// [`PartitionerConfig::with_trace_path`] and [`PartitionerConfig::with_progress`]:
/// the typed counter registry, the progress-callback event, and the structured run
/// report attached to [`PartitionResult::run_report`].
pub use obs::{Counter, ProgressEvent, ProgressHook, RunReport};

/// Identifier of a cluster during coarsening (clusters become coarse vertices).
/// Re-exported from [`graph::ids`]: the width follows the `wide-ids` feature.
pub use graph::ids::ClusterId;
