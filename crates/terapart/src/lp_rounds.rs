//! The shared frontier round-driver of label propagation.
//!
//! Clustering ([`cluster_with_scratch`]) and LP refinement ([`lp_refine_with_scratch`])
//! run the same outer loop: build the round's visit order (full sweep in round 0 or
//! when the frontier is disabled, the collected active set otherwise), shuffle it with
//! a round-derived seed, run one parallel round that marks the next round's frontier,
//! swap the frontier bitsets and evaluate a stop criterion. The loop used to be
//! implemented twice with deliberately different *waiter* semantics; this module hosts
//! the single driver, parameterised over those semantics through
//! [`LpRoundSemantics`]:
//!
//! * clustering retries nothing beyond the frontier — a vertex whose best move was
//!   rejected by the cluster weight constraint is dropped (full clusters rarely shrink
//!   during clustering, and tracking per-cluster capacity changes would cost `O(n)` per
//!   round), and a move-free round always terminates the loop;
//! * refinement keeps balance-blocked movers as *waiters* across rounds (feasibility
//!   depends on global block weights, not the neighbourhood), reactivates them in
//!   whichever round their move first fits again, and only stops on a move-free round
//!   whose next active set is empty.
//!
//! [`cluster_with_scratch`]: crate::coarsening::cluster_with_scratch
//! [`lp_refine_with_scratch`]: crate::refinement::lp_refine_with_scratch

use graph::NodeId;
use obs::{Counter, SpanKind};
use rand::prelude::*;
use rand_chacha::ChaCha8Rng;

use crate::scratch::{AtomicBitset, HierarchyScratch};

/// Aggregate outcome of a driven sequence of rounds.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub(crate) struct RoundStats {
    /// Rounds actually executed (may be fewer than requested on convergence).
    pub rounds: usize,
    /// Total moves across all rounds.
    pub moves: usize,
    /// Number of vertices visited in each executed round.
    pub visited_per_round: Vec<usize>,
}

/// The algorithm-specific half of the round loop (see the module docs).
pub(crate) trait LpRoundSemantics {
    /// Seed of the round's shuffle RNG (each caller keeps its historical mixing so
    /// results stay bit-identical to the pre-unification implementations).
    fn round_seed(&self, round: usize) -> u64;

    /// The `(rounds, moves)` counter pair the driver bumps per executed round, so the
    /// unified registry distinguishes clustering rounds from refinement rounds.
    fn obs_counters(&self) -> (Counter, Counter);

    /// Runs one parallel round over `order`, marking changed neighbourhoods in
    /// `frontier` (when enabled), and returns the number of moves performed.
    fn run_round(&mut self, order: &[NodeId], frontier: Option<&AtomicBitset>) -> usize;

    /// Called with the round's final (shuffled) visit order immediately before
    /// [`run_round`](Self::run_round). Implementations forward it to the graph's
    /// [`prefetch`](graph::Graph::prefetch) hint so a paged graph can start readahead
    /// of exactly the neighbourhoods the round will decode — the visit order is known
    /// one round ahead (the collected frontier), which is what lets the cold sweep
    /// overlap disk with compute. Purely an optimisation hook; the default does
    /// nothing.
    fn prefetch_round(&mut self, _order: &[NodeId]) {}

    /// Whether vertices carried across rounds *outside* the frontier bitsets (waiters)
    /// may still produce work; an empty collected frontier only ends the loop when this
    /// is `false`.
    fn has_pending_waiters(&self) -> bool {
        false
    }

    /// Called between rounds while the frontier is enabled: register this round's
    /// blocked movers and reactivate waiters by setting bits in `next_active`.
    fn after_round(&mut self, _next_active: &AtomicBitset) {}

    /// Whether the loop should stop after a round with `moved` moves.
    /// `next_round_has_work` lazily reports whether the upcoming round's active set is
    /// non-empty (always `false` without the frontier); the default — stop on any
    /// move-free round — is the clustering criterion.
    fn should_stop(
        &mut self,
        moved: usize,
        _next_round_has_work: &mut dyn FnMut() -> bool,
    ) -> bool {
        moved == 0
    }
}

/// Drives up to `max_rounds` label propagation rounds over a graph with `n` vertices,
/// reusing the visit-order buffer and the frontier bitset pair of `scratch`.
pub(crate) fn drive_lp_rounds<S: LpRoundSemantics>(
    n: usize,
    max_rounds: usize,
    use_frontier: bool,
    scratch: &mut HierarchyScratch,
    semantics: &mut S,
) -> RoundStats {
    let mut stats = RoundStats::default();
    if n == 0 {
        return stats;
    }
    let obs = scratch.obs.clone();
    let (rounds_counter, moves_counter) = semantics.obs_counters();
    scratch.ensure_worklists(n);
    let mut order = std::mem::take(&mut scratch.order);
    for round in 0..max_rounds {
        order.clear();
        if round == 0 || !use_frontier {
            order.extend(0..n as NodeId);
        } else {
            scratch.active.collect_into(n, &mut order);
            if order.is_empty() && !semantics.has_pending_waiters() {
                break;
            }
        }
        let mut round_span = obs.span_at(SpanKind::Round, "lp_round", round as u64);
        let mut rng = ChaCha8Rng::seed_from_u64(semantics.round_seed(round));
        order.shuffle(&mut rng);
        let frontier = if use_frontier {
            scratch.next_active.clear_range(n);
            Some(&scratch.next_active)
        } else {
            None
        };
        semantics.prefetch_round(&order);
        let moved = semantics.run_round(&order, frontier);
        if frontier.is_some() {
            semantics.after_round(&scratch.next_active);
        }
        round_span.attr("visited", order.len() as u64);
        round_span.attr("moves", moved as u64);
        drop(round_span);
        obs.add(rounds_counter, 1);
        obs.add(moves_counter, moved as u64);
        stats.rounds += 1;
        stats.visited_per_round.push(order.len());
        stats.moves += moved;
        if use_frontier {
            scratch.swap_active();
        }
        let mut next_round_has_work = || use_frontier && scratch.active.count(n) > 0;
        if semantics.should_stop(moved, &mut next_round_has_work) {
            break;
        }
    }
    scratch.order = order;
    stats
}

#[cfg(test)]
mod tests {
    use super::*;

    /// Minimal semantics that "moves" a shrinking set of vertices and records the
    /// driver's scheduling decisions.
    struct Recording {
        seed: u64,
        rounds_run: usize,
        visited: Vec<Vec<NodeId>>,
        moves_per_round: Vec<usize>,
    }

    impl LpRoundSemantics for Recording {
        fn round_seed(&self, round: usize) -> u64 {
            self.seed ^ round as u64
        }

        fn obs_counters(&self) -> (Counter, Counter) {
            (Counter::LpClusterRounds, Counter::LpClusterMoves)
        }

        fn run_round(&mut self, order: &[NodeId], frontier: Option<&AtomicBitset>) -> usize {
            let mut sorted = order.to_vec();
            sorted.sort_unstable();
            self.visited.push(sorted);
            let moves = self
                .moves_per_round
                .get(self.rounds_run)
                .copied()
                .unwrap_or(0);
            if let Some(bits) = frontier {
                // Mark `moves` vertices active for the next round.
                for &u in order.iter().take(moves) {
                    bits.set(u as usize);
                }
            }
            self.rounds_run += 1;
            moves
        }
    }

    #[test]
    fn full_sweep_when_frontier_disabled() {
        let mut scratch = HierarchyScratch::new();
        let mut semantics = Recording {
            seed: 7,
            rounds_run: 0,
            visited: Vec::new(),
            moves_per_round: vec![3, 2, 1],
        };
        let stats = drive_lp_rounds(10, 3, false, &mut scratch, &mut semantics);
        assert_eq!(stats.rounds, 3);
        assert_eq!(stats.moves, 6);
        for round in &semantics.visited {
            assert_eq!(round.len(), 10, "sweep rounds must visit every vertex");
        }
    }

    #[test]
    fn frontier_rounds_shrink_to_marked_vertices() {
        let mut scratch = HierarchyScratch::new();
        let mut semantics = Recording {
            seed: 7,
            rounds_run: 0,
            visited: Vec::new(),
            moves_per_round: vec![4, 2, 1],
        };
        let stats = drive_lp_rounds(16, 5, true, &mut scratch, &mut semantics);
        assert_eq!(stats.visited_per_round[0], 16);
        assert_eq!(stats.visited_per_round[1], 4);
        assert_eq!(stats.visited_per_round[2], 2);
        assert!(stats.rounds >= 3);
    }

    #[test]
    fn default_stop_is_first_move_free_round() {
        let mut scratch = HierarchyScratch::new();
        let mut semantics = Recording {
            seed: 1,
            rounds_run: 0,
            visited: Vec::new(),
            moves_per_round: vec![2, 0, 5],
        };
        let stats = drive_lp_rounds(8, 5, true, &mut scratch, &mut semantics);
        assert_eq!(stats.rounds, 2, "must stop at the move-free round");
        assert_eq!(stats.moves, 2);
    }

    /// Semantics with a waiter that keeps the loop alive across an empty frontier.
    struct OneWaiter {
        pending: bool,
        rounds_run: usize,
    }

    impl LpRoundSemantics for OneWaiter {
        fn round_seed(&self, round: usize) -> u64 {
            round as u64
        }

        fn obs_counters(&self) -> (Counter, Counter) {
            (Counter::LpRefineRounds, Counter::LpRefineMoves)
        }

        fn run_round(&mut self, _order: &[NodeId], _frontier: Option<&AtomicBitset>) -> usize {
            self.rounds_run += 1;
            // Round 0 performs a move but marks nothing; the waiter reactivates later.
            usize::from(self.rounds_run == 1 || self.rounds_run == 3)
        }

        fn has_pending_waiters(&self) -> bool {
            self.pending
        }

        fn after_round(&mut self, next_active: &AtomicBitset) {
            if self.rounds_run == 2 && self.pending {
                // The waiter's move became feasible: reactivate it.
                next_active.set(5);
                self.pending = false;
            }
        }

        fn should_stop(
            &mut self,
            moved: usize,
            next_round_has_work: &mut dyn FnMut() -> bool,
        ) -> bool {
            moved == 0 && !next_round_has_work() && !self.pending
        }
    }

    #[test]
    fn waiters_keep_the_loop_alive_and_reactivate() {
        let mut scratch = HierarchyScratch::new();
        let mut semantics = OneWaiter {
            pending: true,
            rounds_run: 0,
        };
        let stats = drive_lp_rounds(8, 6, true, &mut scratch, &mut semantics);
        // Round 0 (full), round 1 (empty order but pending waiter), round 2 (the
        // reactivated waiter), round 3 onwards stops.
        assert!(stats.rounds >= 3, "waiter rounds missing: {:?}", stats);
        assert_eq!(stats.visited_per_round[2], 1, "reactivated waiter only");
        assert!(!semantics.pending);
    }
}
