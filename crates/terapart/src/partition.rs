//! k-way partitions and their quality metrics.
//!
//! A [`Partition`] assigns every vertex to one of `k` blocks and maintains the block
//! weights incrementally, so balance checks and vertex moves are `O(1)`. The quality
//! metrics (edge cut, imbalance) follow the definitions in the paper's introduction:
//! blocks must satisfy `|V_i| ≤ (1 + ε) · ⌈|V| / k⌉` (weighted), and the edge cut is the
//! total weight of edges whose endpoints lie in different blocks.

use graph::traits::Graph;
use graph::{EdgeWeight, NodeId, NodeWeight};

/// Identifier of a partition block, in `0..k`.
pub type BlockId = u32;

/// Sentinel for "not assigned to any block yet".
pub const INVALID_BLOCK: BlockId = BlockId::MAX;

/// A `k`-way assignment of vertices to blocks with cached block weights.
#[derive(Debug, Clone, PartialEq)]
pub struct Partition {
    k: usize,
    epsilon: f64,
    assignment: Vec<BlockId>,
    block_weights: Vec<NodeWeight>,
    max_block_weight: NodeWeight,
    total_node_weight: NodeWeight,
    /// Edge cut cached by [`Partition::set_cached_cut`]; not maintained across moves.
    cached_cut: Option<EdgeWeight>,
}

impl Partition {
    /// Creates an empty partition (all vertices unassigned) for a graph with the given
    /// total node weight.
    pub fn unassigned(n: usize, k: usize, epsilon: f64, total_node_weight: NodeWeight) -> Self {
        assert!(k >= 1, "k must be at least 1");
        assert!(epsilon >= 0.0, "epsilon must be non-negative");
        let max_block_weight = Self::compute_max_block_weight(total_node_weight, k, epsilon);
        Self {
            k,
            epsilon,
            assignment: vec![INVALID_BLOCK; n],
            block_weights: vec![0; k],
            max_block_weight,
            total_node_weight,
            cached_cut: None,
        }
    }

    /// Creates a partition from an existing assignment vector.
    pub fn from_assignment(
        graph: &impl Graph,
        k: usize,
        epsilon: f64,
        assignment: Vec<BlockId>,
    ) -> Self {
        assert_eq!(assignment.len(), graph.n());
        let mut p = Self::unassigned(graph.n(), k, epsilon, graph.total_node_weight());
        for (u, &b) in assignment.iter().enumerate() {
            if b != INVALID_BLOCK {
                assert!((b as usize) < k, "block {} out of range", b);
                p.assignment[u] = b;
                p.block_weights[b as usize] += graph.node_weight(u as NodeId);
            }
        }
        p
    }

    /// The balance constraint `L_max = (1 + ε) · ⌈W / k⌉` used throughout the paper, where
    /// `W` is the total node weight. Always at least `⌈W / k⌉` so a perfectly balanced
    /// partition is feasible.
    pub fn compute_max_block_weight(total: NodeWeight, k: usize, epsilon: f64) -> NodeWeight {
        let perfect = (total as f64 / k as f64).ceil();
        ((1.0 + epsilon) * perfect).floor().max(perfect) as NodeWeight
    }

    /// Number of blocks.
    pub fn k(&self) -> usize {
        self.k
    }

    /// The imbalance parameter ε.
    pub fn epsilon(&self) -> f64 {
        self.epsilon
    }

    /// Number of vertices covered by this partition.
    pub fn n(&self) -> usize {
        self.assignment.len()
    }

    /// Maximum admissible block weight.
    pub fn max_block_weight(&self) -> NodeWeight {
        self.max_block_weight
    }

    /// Total node weight of the underlying graph.
    pub fn total_node_weight(&self) -> NodeWeight {
        self.total_node_weight
    }

    /// Block of vertex `u`, or [`INVALID_BLOCK`] if unassigned.
    pub fn block(&self, u: NodeId) -> BlockId {
        self.assignment[u as usize]
    }

    /// Weight currently assigned to block `b`.
    pub fn block_weight(&self, b: BlockId) -> NodeWeight {
        self.block_weights[b as usize]
    }

    /// All block weights.
    pub fn block_weights(&self) -> &[NodeWeight] {
        &self.block_weights
    }

    /// Raw assignment array.
    pub fn assignment(&self) -> &[BlockId] {
        &self.assignment
    }

    /// Returns `true` if every vertex has been assigned a block.
    pub fn is_complete(&self) -> bool {
        self.assignment.iter().all(|&b| b != INVALID_BLOCK)
    }

    /// Assigns vertex `u` (previously unassigned) to block `b`.
    pub fn assign(&mut self, u: NodeId, b: BlockId, node_weight: NodeWeight) {
        debug_assert_eq!(
            self.assignment[u as usize], INVALID_BLOCK,
            "vertex already assigned"
        );
        debug_assert!((b as usize) < self.k);
        self.assignment[u as usize] = b;
        self.block_weights[b as usize] += node_weight;
    }

    /// Moves vertex `u` from its current block to `target`, updating block weights.
    pub fn move_vertex(&mut self, u: NodeId, target: BlockId, node_weight: NodeWeight) {
        let source = self.assignment[u as usize];
        debug_assert_ne!(source, INVALID_BLOCK);
        if source == target {
            return;
        }
        self.block_weights[source as usize] -= node_weight;
        self.block_weights[target as usize] += node_weight;
        self.assignment[u as usize] = target;
    }

    /// Edge cut of this partition on `graph`: total weight of edges crossing blocks.
    pub fn edge_cut_on(&self, graph: &impl Graph) -> EdgeWeight {
        let mut cut: EdgeWeight = 0;
        for u in 0..graph.n() as NodeId {
            let bu = self.assignment[u as usize];
            graph.for_each_neighbor(u, &mut |v, w| {
                if u < v && bu != self.assignment[v as usize] {
                    cut += w;
                }
            });
        }
        cut
    }

    /// Imbalance of the partition: `max_i w(V_i) / ⌈W / k⌉ - 1`.
    pub fn imbalance(&self) -> f64 {
        let perfect = (self.total_node_weight as f64 / self.k as f64).ceil();
        if perfect == 0.0 {
            return 0.0;
        }
        let max = self.block_weights.iter().copied().max().unwrap_or(0) as f64;
        max / perfect - 1.0
    }

    /// Returns `true` if every block respects the balance constraint.
    pub fn is_balanced(&self) -> bool {
        self.block_weights
            .iter()
            .all(|&w| w <= self.max_block_weight)
    }

    /// Returns the heaviest block and its weight.
    pub fn heaviest_block(&self) -> (BlockId, NodeWeight) {
        let (b, &w) = self
            .block_weights
            .iter()
            .enumerate()
            .max_by_key(|&(_, &w)| w)
            .expect("partition has at least one block");
        (b as BlockId, w)
    }

    /// Returns the lightest block and its weight.
    pub fn lightest_block(&self) -> (BlockId, NodeWeight) {
        let (b, &w) = self
            .block_weights
            .iter()
            .enumerate()
            .min_by_key(|&(_, &w)| w)
            .expect("partition has at least one block");
        (b as BlockId, w)
    }

    /// Number of vertices in each block (unweighted sizes).
    pub fn block_sizes(&self) -> Vec<usize> {
        let mut sizes = vec![0usize; self.k];
        for &b in &self.assignment {
            if b != INVALID_BLOCK {
                sizes[b as usize] += 1;
            }
        }
        sizes
    }

    /// Projects this partition of a coarse graph onto a finer graph through the
    /// cluster mapping used during contraction: fine vertex `u` belongs to the block of
    /// its coarse representative `mapping[u]`.
    pub fn project(&self, fine_graph: &impl Graph, mapping: &[NodeId]) -> Partition {
        assert_eq!(mapping.len(), fine_graph.n());
        let assignment: Vec<BlockId> = mapping
            .iter()
            .map(|&coarse| self.assignment[coarse as usize])
            .collect();
        Partition::from_assignment(fine_graph, self.k, self.epsilon, assignment)
    }

    /// Convenience wrapper used by tests and benches: returns the edge cut cached by
    /// [`Partition::set_cached_cut`].
    pub fn edge_cut(&self) -> EdgeWeight {
        // The partition does not retain a graph reference; callers that need the cut on a
        // specific graph should prefer `edge_cut_on`. This method exists for the common
        // pattern in results structs where the cut has been cached.
        self.cached_cut.unwrap_or(0)
    }

    /// Caches an externally computed edge cut so that result consumers can read it
    /// without re-walking the graph.
    pub fn set_cached_cut(&mut self, cut: EdgeWeight) {
        self.cached_cut = Some(cut);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use graph::gen;

    #[test]
    fn max_block_weight_formula() {
        // 100 vertices, k = 4, eps = 3% -> ceil(25) * 1.03 = 25.75 -> 25
        assert_eq!(Partition::compute_max_block_weight(100, 4, 0.03), 25);
        // eps = 10% -> 27
        assert_eq!(Partition::compute_max_block_weight(100, 4, 0.10), 27);
        // Never below the perfect balance.
        assert_eq!(Partition::compute_max_block_weight(10, 3, 0.0), 4);
    }

    #[test]
    fn assignment_and_weights() {
        let g = gen::path(6);
        let mut p = Partition::unassigned(6, 2, 0.0, g.total_node_weight());
        for u in 0..3 {
            p.assign(u, 0, 1);
        }
        for u in 3..6 {
            p.assign(u as NodeId, 1, 1);
        }
        assert!(p.is_complete());
        assert_eq!(p.block_weight(0), 3);
        assert_eq!(p.block_weight(1), 3);
        assert!(p.is_balanced());
        assert_eq!(p.edge_cut_on(&g), 1);
        assert_eq!(p.block_sizes(), vec![3, 3]);
    }

    #[test]
    fn move_vertex_updates_weights_and_cut() {
        let g = gen::path(4);
        let p0 = Partition::from_assignment(&g, 2, 1.0, vec![0, 0, 1, 1]);
        assert_eq!(p0.edge_cut_on(&g), 1);
        let mut p = p0.clone();
        p.move_vertex(1, 1, 1);
        assert_eq!(p.block_weight(0), 1);
        assert_eq!(p.block_weight(1), 3);
        assert_eq!(p.edge_cut_on(&g), 1);
        // Moving a vertex to its own block is a no-op.
        p.move_vertex(1, 1, 1);
        assert_eq!(p.block_weight(1), 3);
    }

    #[test]
    fn imbalance_and_heaviest() {
        let g = gen::complete(8);
        let p = Partition::from_assignment(&g, 2, 0.03, vec![0, 0, 0, 0, 0, 0, 1, 1]);
        assert!((p.imbalance() - 0.5).abs() < 1e-9);
        assert!(!p.is_balanced());
        assert_eq!(p.heaviest_block(), (0, 6));
        assert_eq!(p.lightest_block(), (1, 2));
    }

    #[test]
    fn projection_through_mapping() {
        let fine = gen::grid2d(2, 4); // 8 vertices
        let coarse_assignment = vec![0, 1, 1, 0];
        let coarse = gen::path(4);
        let coarse_partition = Partition::from_assignment(&coarse, 2, 0.5, coarse_assignment);
        // Fine vertices map pairwise onto coarse vertices.
        let mapping = vec![0, 0, 1, 1, 2, 2, 3, 3];
        let fine_partition = coarse_partition.project(&fine, &mapping);
        assert_eq!(fine_partition.block(0), 0);
        assert_eq!(fine_partition.block(2), 1);
        assert_eq!(fine_partition.block(7), 0);
        assert_eq!(fine_partition.block_weight(0), 4);
        assert_eq!(fine_partition.block_weight(1), 4);
    }

    #[test]
    fn cached_cut_round_trip() {
        let g = gen::path(4);
        let mut p = Partition::from_assignment(&g, 2, 1.0, vec![0, 0, 1, 1]);
        assert_eq!(p.edge_cut(), 0);
        let cut = p.edge_cut_on(&g);
        p.set_cached_cut(cut);
        assert_eq!(p.edge_cut(), 1);
    }

    #[test]
    #[should_panic(expected = "out of range")]
    fn out_of_range_block_panics() {
        let g = gen::path(2);
        let _ = Partition::from_assignment(&g, 2, 0.0, vec![0, 5]);
    }
}
