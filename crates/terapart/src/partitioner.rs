//! The multilevel partitioning driver: coarsen → initial partition → uncoarsen + refine.
//!
//! [`partition`] runs the full pipeline on any [`Graph`] representation; [`partition_csr`]
//! additionally honours [`PartitionerConfig::use_compression`] by compressing the input
//! first (charging only the compressed size to the memory accounting), which is how the
//! paper's configuration ladder (KaMinPar → … → TeraPart) is evaluated.
//! [`partition_ondisk`] goes one step beyond the ladder: it opens a `.tpg` container
//! through a fixed-budget page cache ([`graph::PagedGraph`]) so the finest-level
//! clustering, contraction, projection and refinement run directly against disk —
//! the accounted in-memory footprint of the input is `offset index + node weights +
//! page budget` instead of the compressed (let alone the CSR) size.

use std::path::Path;
use std::sync::Arc;
use std::time::{Duration, Instant};

use graph::csr::{CsrGraph, CsrGraphBuilder};
use graph::store::PagedGraph;
use graph::traits::Graph;
use graph::{EdgeWeight, NodeId};
use memtrack::{MemoryScope, PhaseReport, PhaseTracker};
use obs::{Counter, ObsHandle, ProgressEvent, Recorder, RunReport, SpanKind};

use crate::coarsening::{self, Hierarchy};
use crate::context::PartitionerConfig;
use crate::error::PartitionError;
use crate::initial::initial_partition_with_scratch;
use crate::partition::Partition;
use crate::refinement::{refine_with_scratch, RefinementStats};
use crate::scratch::HierarchyScratch;

/// The outcome of a partitioning run, with the quality/time/memory numbers the paper's
/// experiments report.
#[derive(Debug)]
pub struct PartitionResult {
    /// The computed k-way partition of the input graph.
    pub partition: Partition,
    /// Edge cut of the partition on the input graph.
    pub edge_cut: EdgeWeight,
    /// Imbalance of the partition.
    pub imbalance: f64,
    /// Wall-clock time of the whole run.
    pub total_time: Duration,
    /// Peak bytes observed by the memory accounting during the run.
    pub peak_memory_bytes: usize,
    /// Number of coarsening levels.
    pub hierarchy_depth: usize,
    /// Per-phase memory/time reports (Figure 2 style breakdown).
    pub phase_reports: Vec<PhaseReport>,
    /// Aggregated refinement statistics over all levels.
    pub refinement: RefinementStats,
    /// Page-cache counters of the run — `Some` only for the on-disk entry points
    /// ([`partition_ondisk`]), snapshotted after the prefetch queue drained.
    pub cache_stats: Option<graph::store::CacheStatsSnapshot>,
    /// Structured observability report: the `pipeline → level → phase → round` span
    /// tree with wall times and per-phase peak memory, plus the unified counter
    /// registry. `Some` only when the run recorded
    /// ([`PartitionerConfig::with_run_report`] or
    /// [`PartitionerConfig::with_trace_path`]); recording never changes the partition.
    pub run_report: Option<RunReport>,
}

/// Materialises any graph representation as an (unsorted-weight-preserving) CSR graph.
/// Needed when initial partitioning must run directly on the input because no coarsening
/// step took place.
fn to_csr(graph: &impl Graph) -> CsrGraph {
    let mut builder = if graph.is_node_weighted() {
        let weights = (0..graph.n() as NodeId)
            .map(|u| graph.node_weight(u))
            .collect();
        CsrGraphBuilder::with_node_weights(weights)
    } else {
        CsrGraphBuilder::new(graph.n())
    };
    for u in 0..graph.n() as NodeId {
        graph.for_each_neighbor(u, &mut |v, w| {
            if u < v {
                builder.add_edge(u, v, w);
            }
        });
    }
    builder.build()
}

/// The observability side of one partitioning run: a recording sink when the
/// configuration asks for a run report or a trace export, the free noop path otherwise.
pub(crate) struct ObsSession {
    pub(crate) handle: ObsHandle,
    recorder: Option<Arc<Recorder>>,
}

impl ObsSession {
    pub(crate) fn new(config: &PartitionerConfig) -> Self {
        if config.obs.wants_recording() {
            let (handle, recorder) = ObsHandle::recording();
            Self {
                handle,
                recorder: Some(recorder),
            }
        } else {
            Self {
                handle: ObsHandle::noop(),
                recorder: None,
            }
        }
    }

    /// Settles the run: pours the graph representation's counters (e.g. page-cache
    /// statistics) and the run's memory peak into the registry, builds the
    /// [`RunReport`], and exports the Chrome trace if one was requested. Returns
    /// `None` for non-recording runs. Trace export is best-effort — an unwritable
    /// path must not fail an otherwise successful partitioning run.
    pub(crate) fn finish(
        self,
        graph: &impl Graph,
        config: &PartitionerConfig,
        tracker: &PhaseTracker,
    ) -> Option<RunReport> {
        let recorder = self.recorder?;
        graph.record_obs_metrics(recorder.metrics());
        recorder
            .metrics()
            .record_max(Counter::PeakMemoryBytes, tracker.overall_peak() as u64);
        let report = recorder.finish_report();
        if let Some(path) = &config.obs.trace_path {
            if let Err(err) = obs::write_chrome_trace(path, &report) {
                eprintln!(
                    "terapart: failed to write the chrome trace to {}: {err}",
                    path.display()
                );
            }
        }
        Some(report)
    }
}

/// Runs `f` as a tracked phase (memtrack peak attribution) wrapped in an observability
/// span of the same name; the phase's peak memory rides on the span as an attribute.
/// With a noop handle this is exactly `tracker.run` plus two dead branches.
pub(crate) fn obs_phase<T>(
    obs: &ObsHandle,
    tracker: &PhaseTracker,
    name: &'static str,
    level: usize,
    f: impl FnOnce() -> T,
) -> T {
    let mut span = obs.span_at(SpanKind::Phase, name, level as u64);
    let (value, report) = tracker.run_reported(name, level, f);
    span.attr("peak_bytes", report.peak_bytes as u64);
    value
}

/// Partitions `graph` into `config.k` blocks, recording phases in `tracker`.
///
/// The graph is used in whatever representation it is passed in; see [`partition_csr`]
/// for the variant that applies graph compression according to the configuration.
///
/// Thin wrapper over a run-scoped [`PartitionEngine`](crate::engine::PartitionEngine);
/// long-lived callers serving many requests should hold an engine instead, which reuses
/// scratch arenas and open stores across requests.
pub fn partition_with_tracker(
    graph: &impl Graph,
    config: &PartitionerConfig,
    tracker: &PhaseTracker,
) -> PartitionResult {
    let engine = crate::engine::PartitionEngine::with_config(
        crate::engine::EngineConfig::from_partitioner(config),
    );
    engine.partition_with_tracker(
        graph,
        &crate::engine::PartitionRequest::from_config(config),
        tracker,
    )
}

/// [`partition_with_tracker`] against an already-created observability session and an
/// externally owned scratch arena — the engine's inner pipeline. The compressing and
/// store-opening entry points record their input phases into the same session's report;
/// the arena comes from the engine's [`ScratchPool`](crate::engine::ScratchPool), so a
/// request on a warmed engine partitions without re-growing the auxiliary buffers.
pub(crate) fn partition_with_session(
    graph: &impl Graph,
    config: &PartitionerConfig,
    tracker: &PhaseTracker,
    session: ObsSession,
    scratch: &mut HierarchyScratch,
) -> PartitionResult {
    let start = Instant::now();
    let obs = session.handle.clone();
    let progress = &config.obs.progress;
    let pool = rayon::ThreadPoolBuilder::new()
        .num_threads(config.num_threads.max(1))
        .build()
        .expect("failed to build the partitioning thread pool");

    // The root span of the run. Everything the pipeline does — coarsening levels,
    // initial partitioning, uncoarsening levels, the final cut evaluation — nests
    // underneath it, so its child coverage accounts for (nearly) the whole wall time.
    let mut root = obs.span(SpanKind::Pipeline, "pipeline");
    root.attr("n", graph.n() as u64);
    root.attr("m", graph.m() as u64);
    root.attr("k", config.k as u64);
    root.attr("threads", config.num_threads.max(1) as u64);

    let (partition, hierarchy_depth, refinement) = pool.install(|| {
        // One scratch arena serves the whole run: the input level sizes it, every
        // later coarsening level and every refinement level reuses it (and on a
        // warmed engine, the previous run already sized it). It also carries the
        // run's observability handle into the phase implementations.
        scratch.obs = obs.clone();

        // ---- Coarsening ----
        let hierarchy: Hierarchy =
            coarsening::coarsen_with_scratch(graph, config, tracker, scratch);
        let depth = hierarchy.depth();

        // ---- Initial partitioning on the coarsest graph ----
        let coarsest_owned;
        let mut _csr_fallback_charge = None;
        let coarsest: &CsrGraph = match hierarchy.coarsest() {
            Some(g) => g,
            None => {
                // No coarsening took place: initial partitioning needs a CSR view of
                // the input. Materialising it is a real memory event — charge it and
                // report it as its own phase, so the memory ladder cannot silently
                // under-report the no-coarsening path.
                let (csr, charge) = obs_phase(&obs, tracker, "materialize_csr", 0, || {
                    let csr = to_csr(graph);
                    let charge = MemoryScope::charge_global(csr.size_in_bytes());
                    (csr, charge)
                });
                coarsest_owned = csr;
                _csr_fallback_charge = Some(charge);
                &coarsest_owned
            }
        };
        let mut current = obs_phase(&obs, tracker, "initial_partition", depth, || {
            initial_partition_with_scratch(
                coarsest,
                config.k,
                config.epsilon,
                &config.initial,
                config.seed,
                scratch,
            )
        });
        if progress.is_set() {
            progress.emit(&ProgressEvent::InitialPartitioned {
                coarse_nodes: coarsest.n(),
                edge_cut: current.edge_cut_on(coarsest),
                imbalance: current.imbalance(),
            });
        }

        // ---- Uncoarsening: refine, then project to the next finer level ----
        let mut total_refinement = RefinementStats::default();
        let accumulate = |stats: RefinementStats, total: &mut RefinementStats| {
            total.lp_moves += stats.lp_moves;
            total.fm_moves += stats.fm_moves;
            total.rebalance_moves += stats.rebalance_moves;
            total.gain_table_bytes = total.gain_table_bytes.max(stats.gain_table_bytes);
        };
        // Live-progress report after refining one level: a read-only cut scan, done
        // only when a hook is installed, so it cannot perturb the partitioning.
        let report_refined =
            |level: usize, g: &dyn Graph, partition: &crate::partition::Partition| {
                if progress.is_set() {
                    progress.emit(&ProgressEvent::LevelRefined {
                        level,
                        nodes: g.n(),
                        edge_cut: partition.edge_cut_on(&g),
                        imbalance: partition.imbalance(),
                    });
                }
            };

        if depth > 0 {
            // Refine on the coarsest graph first.
            let stats = {
                let _level = obs.span_at(SpanKind::Level, "uncoarsen_level", depth as u64);
                let stats = obs_phase(&obs, tracker, "refine", depth, || {
                    refine_with_scratch(
                        coarsest,
                        &mut current,
                        &config.refinement,
                        config.seed ^ 0xC0A53,
                        scratch,
                    )
                });
                report_refined(depth, coarsest, &current);
                stats
            };
            accumulate(stats, &mut total_refinement);
            // Walk the hierarchy back up: project from level i+1 onto level i's graph.
            for i in (0..depth).rev() {
                let _level = obs.span_at(SpanKind::Level, "uncoarsen_level", i as u64);
                let level_graph = if i == 0 {
                    None
                } else {
                    Some(&hierarchy.levels[i - 1].coarse)
                };
                let mapping = &hierarchy.levels[i].mapping;
                current = obs_phase(&obs, tracker, "uncoarsen", i, || match level_graph {
                    Some(g) => current.project(g, mapping),
                    None => current.project(graph, mapping),
                });
                let stats = obs_phase(&obs, tracker, "refine", i, || match level_graph {
                    Some(g) => refine_with_scratch(
                        g,
                        &mut current,
                        &config.refinement,
                        config.seed ^ (i as u64),
                        scratch,
                    ),
                    None => refine_with_scratch(
                        graph,
                        &mut current,
                        &config.refinement,
                        config.seed ^ (i as u64),
                        scratch,
                    ),
                });
                match level_graph {
                    Some(g) => report_refined(i, g, &current),
                    None => report_refined(i, &graph, &current),
                }
                accumulate(stats, &mut total_refinement);
            }
        } else {
            // No coarsening took place: refine directly on the input graph.
            let _level = obs.span_at(SpanKind::Level, "uncoarsen_level", 0);
            let stats = obs_phase(&obs, tracker, "refine", 0, || {
                refine_with_scratch(
                    graph,
                    &mut current,
                    &config.refinement,
                    config.seed ^ 0xC0A53,
                    scratch,
                )
            });
            report_refined(0, &graph, &current);
            accumulate(stats, &mut total_refinement);
        }
        (current, depth, total_refinement)
    });

    let edge_cut = {
        let _span = obs.span(SpanKind::Phase, "evaluate");
        partition.edge_cut_on(graph)
    };
    let mut partition = partition;
    partition.set_cached_cut(edge_cut);
    let imbalance = partition.imbalance();
    root.attr("edge_cut", edge_cut);
    root.attr("depth", hierarchy_depth as u64);
    drop(root);
    let run_report = session.finish(graph, config, tracker);
    PartitionResult {
        edge_cut,
        imbalance,
        total_time: start.elapsed(),
        peak_memory_bytes: tracker.overall_peak(),
        hierarchy_depth,
        phase_reports: tracker.reports(),
        refinement,
        partition,
        cache_stats: None,
        run_report,
    }
}

/// Partitions `graph` into `config.k` blocks with a fresh phase tracker.
pub fn partition(graph: &impl Graph, config: &PartitionerConfig) -> PartitionResult {
    let tracker = PhaseTracker::new();
    partition_with_tracker(graph, config, &tracker)
}

/// Partitions a CSR graph, honouring [`PartitionerConfig::use_compression`]: when set,
/// the input is compressed first (in parallel, as in §III-B) and the partitioner runs on
/// the compressed representation; the memory accounting charges whichever representation
/// is actually used, reproducing the configuration ladder of Figures 1, 4 and 6.
pub fn partition_csr(graph: &CsrGraph, config: &PartitionerConfig) -> PartitionResult {
    let tracker = PhaseTracker::new();
    partition_csr_with_tracker(graph, config, &tracker)
}

/// [`partition_csr`] with an externally supplied phase tracker.
pub fn partition_csr_with_tracker(
    graph: &CsrGraph,
    config: &PartitionerConfig,
    tracker: &PhaseTracker,
) -> PartitionResult {
    let engine = crate::engine::PartitionEngine::with_config(
        crate::engine::EngineConfig::from_partitioner(config),
    );
    engine.partition_csr_with_tracker(
        graph,
        &crate::engine::PartitionRequest::from_config(config),
        tracker,
    )
}

/// Partitions a graph stored in a `.tpg` container on disk, never loading the full
/// adjacency into memory: the input is accessed through a page cache whose geometry
/// comes from [`PartitionerConfig::ondisk`], so the finest-level coarsening pass and
/// the final projection/refinement decode neighbourhoods straight from disk.
///
/// For a fixed seed (and thread count) the resulting partition is bit-identical to
/// running [`partition`] on the in-memory compressed graph loaded from the same
/// container ([`graph::store::read_tpg_compressed`]): both decode the identical bytes
/// in the identical order.
///
/// # Errors
///
/// Storage faults never panic the pipeline. A failed open (missing file, malformed or
/// corrupt container) and a read that still fails after checksum verification and
/// [retries](crate::context::OnDiskConfig) both surface as a structured
/// [`PartitionError`] naming the pipeline phase the fault interrupted; any partial
/// result computed before the fault is discarded.
pub fn partition_ondisk(
    path: impl AsRef<Path>,
    config: &PartitionerConfig,
) -> Result<PartitionResult, PartitionError> {
    let tracker = PhaseTracker::new();
    partition_ondisk_with_tracker(path, config, &tracker)
}

/// [`partition_ondisk`] with an externally supplied phase tracker. The container open
/// (header + offset index read, semi-external charge) is reported as the
/// `"open_store"` phase.
pub fn partition_ondisk_with_tracker(
    path: impl AsRef<Path>,
    config: &PartitionerConfig,
    tracker: &PhaseTracker,
) -> Result<PartitionResult, PartitionError> {
    let engine = crate::engine::PartitionEngine::with_config(
        crate::engine::EngineConfig::from_partitioner(config),
    );
    engine.partition_path_with_tracker(
        path,
        &crate::engine::PartitionRequest::from_config(config),
        tracker,
    )
}

/// Runs the on-disk pipeline against an already-open [`PagedGraph`] — the entry point
/// the fault-injection harness uses with
/// [`PagedGraph::open_with_backend`], and what the engine's path entry delegates to
/// after opening the container.
///
/// The run reads the graph through a per-request [`graph::StoreSession`] with a fault
/// observer that labels any mid-run storage fault with the pipeline phase it
/// interrupted (via the tracker's [phase handle](PhaseTracker::phase_handle)); if the
/// session poisoned itself during the run, the partial result is discarded and the
/// first fatal error returns as a [`PartitionError`]. The `PagedGraph` itself stays
/// healthy — a fault in one request never poisons a co-tenant sharing the store.
pub fn partition_paged_with_tracker(
    graph: &PagedGraph,
    config: &PartitionerConfig,
    tracker: &PhaseTracker,
) -> Result<PartitionResult, PartitionError> {
    let engine = crate::engine::PartitionEngine::with_config(
        crate::engine::EngineConfig::from_partitioner(config),
    );
    engine.partition_paged_with_tracker(
        graph,
        &crate::engine::PartitionRequest::from_config(config),
        tracker,
    )
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::context::PartitionerConfig;
    use graph::gen;

    fn check_result(graph: &impl Graph, result: &PartitionResult, k: usize) {
        assert_eq!(result.partition.k(), k);
        assert!(result.partition.is_complete());
        assert_eq!(result.edge_cut, result.partition.edge_cut_on(graph));
        assert!(
            result.partition.is_balanced(),
            "imbalanced result: {:?} (max {})",
            result.partition.block_weights(),
            result.partition.max_block_weight()
        );
        assert_eq!(
            result.partition.block_weights().iter().sum::<u64>(),
            graph.total_node_weight()
        );
    }

    #[test]
    fn partitions_a_grid_into_four_blocks() {
        let g = gen::grid2d(32, 32);
        let config = PartitionerConfig::terapart(4).with_threads(2);
        let result = partition(&g, &config);
        check_result(&g, &result, 4);
        assert!(result.hierarchy_depth >= 1);
        // A 32x32 grid has a 4-way partition with cut around 2 * 32; random would be ~1500.
        assert!(result.edge_cut < 300, "cut {} too high", result.edge_cut);
        assert!(!result.phase_reports.is_empty());
    }

    #[test]
    fn all_configuration_presets_produce_valid_partitions() {
        let g = gen::rgg2d(2000, 10, 4);
        for config in [
            PartitionerConfig::kaminpar(8),
            PartitionerConfig::kaminpar_two_phase_lp(8),
            PartitionerConfig::kaminpar_compressed(8),
            PartitionerConfig::terapart(8),
            PartitionerConfig::terapart_fm(8),
        ] {
            let result = partition_csr(&g, &config.with_threads(2));
            check_result(&g, &result, 8);
        }
    }

    #[test]
    fn quality_is_far_better_than_random() {
        let g = gen::grid2d(40, 40);
        let config = PartitionerConfig::terapart(8).with_threads(2);
        let result = partition(&g, &config);
        check_result(&g, &result, 8);
        // A random 8-way partition of a 40x40 grid cuts ~7/8 of the ~3120 edges.
        let random_cut_estimate = (g.m() as f64 * 7.0 / 8.0) as u64;
        assert!(
            result.edge_cut * 4 < random_cut_estimate,
            "cut {} not much better than random {}",
            result.edge_cut,
            random_cut_estimate
        );
    }

    #[test]
    fn fm_configuration_is_at_least_as_good_as_lp() {
        let g = gen::rgg2d(3000, 12, 8);
        let lp = partition(&g, &PartitionerConfig::terapart(16).with_threads(2));
        let fm = partition(&g, &PartitionerConfig::terapart_fm(16).with_threads(2));
        check_result(&g, &lp, 16);
        check_result(&g, &fm, 16);
        // The two configurations follow different refinement trajectories during
        // uncoarsening (and LP refinement is non-deterministic under parallelism), so FM
        // is only required to stay in the same quality class here; the strict "FM never
        // worse than LP on the same partition" property is asserted in
        // refinement::tests::fm_configuration_improves_over_lp_alone.
        assert!(
            fm.edge_cut as f64 <= lp.edge_cut as f64 * 1.3,
            "FM cut {} much worse than LP cut {}",
            fm.edge_cut,
            lp.edge_cut
        );
        assert!(fm.refinement.gain_table_bytes > 0);
        assert_eq!(lp.refinement.gain_table_bytes, 0);
    }

    #[test]
    fn compressed_and_uncompressed_inputs_give_similar_quality() {
        let g = gen::weblike(11, 8, 3);
        let base = PartitionerConfig::kaminpar_two_phase_lp(4)
            .with_threads(2)
            .with_seed(5);
        let compressed_config = PartitionerConfig::kaminpar_compressed(4)
            .with_threads(2)
            .with_seed(5);
        let a = partition_csr(&g, &base);
        let b = partition_csr(&g, &compressed_config);
        check_result(&g, &a, 4);
        check_result(&g, &b, 4);
        let ratio = a.edge_cut.max(1) as f64 / b.edge_cut.max(1) as f64;
        assert!(
            (0.7..1.4).contains(&ratio),
            "cut ratio {} too far from 1",
            ratio
        );
    }

    #[test]
    fn small_graph_with_large_k() {
        let g = gen::grid2d(8, 8);
        let config = PartitionerConfig::terapart(16).with_threads(1);
        let result = partition(&g, &config);
        check_result(&g, &result, 16);
        assert_eq!(
            result.hierarchy_depth, 0,
            "64 vertices should not be coarsened for k=16"
        );
    }

    #[test]
    fn k_equal_one_yields_zero_cut() {
        let g = gen::path(50);
        let result = partition(&g, &PartitionerConfig::terapart(1));
        assert_eq!(result.edge_cut, 0);
        assert_eq!(result.imbalance, 0.0);
    }

    #[test]
    fn deterministic_with_one_thread_and_fixed_seed() {
        let g = gen::erdos_renyi(500, 2000, 9);
        let config = PartitionerConfig::terapart(4).with_threads(1).with_seed(77);
        let a = partition(&g, &config);
        let b = partition(&g, &config);
        assert_eq!(a.edge_cut, b.edge_cut);
        assert_eq!(a.partition.assignment(), b.partition.assignment());
    }

    #[test]
    fn phase_reports_cover_the_pipeline() {
        let g = gen::grid2d(30, 30);
        let tracker = PhaseTracker::new();
        let config = PartitionerConfig::terapart(4).with_threads(2);
        let result = partition_csr_with_tracker(&g, &config, &tracker);
        check_result(&g, &result, 4);
        let names: std::collections::HashSet<String> = result
            .phase_reports
            .iter()
            .map(|r| r.name.clone())
            .collect();
        for expected in [
            "compress_input",
            "cluster",
            "contract",
            "initial_partition",
            "refine",
        ] {
            assert!(
                names.contains(expected),
                "missing phase {} in {:?}",
                expected,
                names
            );
        }
        assert!(result.peak_memory_bytes > 0);
    }

    #[test]
    fn weighted_graphs_are_partitioned_by_weight() {
        let g = gen::with_random_node_weights(&gen::grid2d(20, 20), 4, 6);
        let config = PartitionerConfig::terapart(4).with_threads(2);
        let result = partition(&g, &config);
        check_result(&g, &result, 4);
    }

    #[test]
    fn depth_zero_fallback_charges_and_reports_materialized_csr() {
        // 64 vertices, k = 16: no coarsening happens, so the pipeline materialises the
        // input as CSR — that allocation must show up as a tracked, charged phase.
        let g = gen::grid2d(8, 8);
        let compressed = graph::CompressedGraph::from_csr(&g, &graph::CompressionConfig::default());
        let config = PartitionerConfig::terapart(16).with_threads(1);
        let tracker = PhaseTracker::new();
        let result = partition_with_tracker(&compressed, &config, &tracker);
        assert_eq!(result.hierarchy_depth, 0);
        let report = result
            .phase_reports
            .iter()
            .find(|r| r.name == "materialize_csr")
            .expect("depth-0 fallback must report a materialize_csr phase");
        assert!(
            report.peak_bytes >= g.size_in_bytes(),
            "materialize_csr phase peak {} below CSR size {}",
            report.peak_bytes,
            g.size_in_bytes()
        );
    }

    #[test]
    fn ondisk_partitioning_matches_in_memory_compressed_bit_for_bit() {
        let g = gen::weblike(11, 10, 21);
        let dir = std::env::temp_dir().join(format!("terapart_ondisk_unit_{}", std::process::id()));
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("unit.tpg");
        graph::store::write_tpg_from_graph(&g, &path, &graph::CompressionConfig::default())
            .unwrap();
        // Single thread: parallel LP applies moves in scheduling order, so determinism
        // across representations is only guaranteed sequentially.
        let config = PartitionerConfig::terapart(8)
            .with_threads(1)
            .with_seed(3)
            .with_page_budget(64 * 1024);
        let in_memory = graph::store::read_tpg_compressed(&path).unwrap();
        let reference = partition(&in_memory, &config);
        let ondisk = partition_ondisk(&path, &config).unwrap();
        assert_eq!(ondisk.edge_cut, reference.edge_cut);
        assert_eq!(
            ondisk.partition.assignment(),
            reference.partition.assignment(),
            "on-disk partition differs from the in-memory compressed path"
        );
        assert!(ondisk.phase_reports.iter().any(|r| r.name == "open_store"));
        std::fs::remove_dir_all(dir).ok();
    }

    #[test]
    fn ondisk_open_errors_are_propagated() {
        let config = PartitionerConfig::terapart(4);
        assert!(partition_ondisk("/nonexistent/path/graph.tpg", &config).is_err());
    }

    #[test]
    fn run_report_is_attached_and_covers_the_pipeline() {
        let g = gen::rgg2d(2000, 10, 4);
        let config = PartitionerConfig::terapart(8)
            .with_threads(2)
            .with_run_report(true);
        let result = partition(&g, &config);
        check_result(&g, &result, 8);
        let report = result
            .run_report
            .as_ref()
            .expect("recording run attaches a report");
        assert!(report.total_ns > 0);
        assert!(
            report.span_coverage >= 0.9,
            "span coverage {} below 0.9",
            report.span_coverage
        );
        let root = report.find("pipeline").expect("pipeline root span");
        assert_eq!(root.attr("n"), Some(g.n() as u64));
        assert_eq!(root.attr("k"), Some(8));
        assert_eq!(root.attr("edge_cut"), Some(result.edge_cut));
        for phase in [
            "cluster",
            "contract",
            "initial_partition",
            "refine",
            "evaluate",
        ] {
            assert!(report.find(phase).is_some(), "missing span {phase}");
        }
        assert!(report.counter(Counter::LpClusterRounds) > 0);
        assert!(report.counter(Counter::LpClusterMoves) > 0);
        assert_eq!(
            report.counter(Counter::CoarseningLevels),
            result.hierarchy_depth as u64
        );
        // Recursive bisection for k = 8 performs exactly k - 1 bisections, each running
        // at least one portfolio attempt.
        assert_eq!(report.counter(Counter::InitialBisections), 7);
        assert!(
            report.counter(Counter::InitialAttempts) >= report.counter(Counter::InitialBisections)
        );
        assert!(report.counter(Counter::PeakMemoryBytes) > 0);
    }

    #[test]
    fn noop_config_attaches_no_report_and_matches_recording_bitwise() {
        let g = gen::erdos_renyi(1500, 6000, 11);
        let base = PartitionerConfig::terapart(4).with_threads(1).with_seed(5);
        let plain = partition(&g, &base);
        assert!(plain.run_report.is_none(), "noop config must not record");
        let recorded = partition(&g, &base.clone().with_run_report(true));
        assert!(recorded.run_report.is_some());
        assert_eq!(plain.edge_cut, recorded.edge_cut);
        assert_eq!(
            plain.partition.assignment(),
            recorded.partition.assignment(),
            "recording perturbed the fixed-seed result"
        );
    }
}
