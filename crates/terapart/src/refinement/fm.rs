//! Parallel k-way FM-style refinement backed by a gain cache (paper §V / Figure 7).
//!
//! The refinement repeatedly collects the boundary vertices, orders them by their best
//! move gain (highest first) and applies positive-gain moves in parallel, keeping the
//! gain cache consistent after every move. This is the "localized k-way FM" role in the
//! TeraPart-FM configuration; compared to full FM with hill-climbing and rollback it only
//! applies non-negative-gain moves, which preserves the paper's qualitative behaviour
//! (FM on top of LP refinement lowers the cut, and the choice of gain table affects
//! memory and speed but not quality) while staying simple enough to verify.
//!
//! The gain cache variants are exactly the paper's: none (recompute), dense `O(nk)`, and
//! the space-efficient `O(m)` sparse table. Their memory is charged to the global memory
//! accounting so the Figure 7 peak-memory comparison can be reproduced.

use std::sync::atomic::{AtomicUsize, Ordering};

use graph::traits::Graph;
use graph::{EdgeWeight, NodeId};
use memtrack::MemoryScope;
use obs::{Counter, ObsHandle, SpanKind};
use rayon::prelude::*;

use crate::context::GainTableKind;
use crate::partition::{BlockId, Partition};

use super::gain_table::GainCache;
use super::lp_refine::AtomicPartition;

/// Statistics of one FM refinement invocation.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct FmStats {
    /// Number of vertex moves applied.
    pub moves: usize,
    /// Heap bytes used by the gain cache.
    pub gain_table_bytes: usize,
    /// Number of refinement passes executed.
    pub passes: usize,
    /// Moves applied and later undone by hill-climbing rollback. Always 0 for this
    /// batched scheme (it only applies positive-gain moves); the priority-queue k-way
    /// FM ([`kway_fm`](super::kway_fm)) reports its rolled-back tails here.
    pub moves_rolled_back: usize,
}

/// Runs FM refinement on `partition` with the given gain-table kind, using a throwaway
/// candidate buffer. Prefer [`fm_refine_with_candidates`] inside the pipeline.
pub fn fm_refine(
    graph: &impl Graph,
    partition: &mut Partition,
    gain_table: GainTableKind,
    max_passes: usize,
    fraction: f64,
) -> FmStats {
    let mut candidates = Vec::new();
    fm_refine_with_candidates(
        graph,
        partition,
        gain_table,
        max_passes,
        fraction,
        &mut candidates,
    )
}

/// Runs FM refinement on `partition`, collecting each pass's boundary-move candidates
/// into `candidates` — a scratch buffer whose capacity is reused across passes and (via
/// [`HierarchyScratch`](crate::scratch::HierarchyScratch)) across hierarchy levels,
/// instead of a fresh `Vec` per pass.
pub fn fm_refine_with_candidates(
    graph: &impl Graph,
    partition: &mut Partition,
    gain_table: GainTableKind,
    max_passes: usize,
    fraction: f64,
    candidates: &mut Vec<(i64, NodeId, BlockId)>,
) -> FmStats {
    fm_refine_obs(
        graph,
        partition,
        gain_table,
        max_passes,
        fraction,
        candidates,
        &ObsHandle::noop(),
    )
}

/// [`fm_refine_with_candidates`] with an observability handle: each pass is a `fm_pass`
/// round span and the pass/move totals feed the unified counter registry.
#[allow(clippy::too_many_arguments)]
pub(crate) fn fm_refine_obs(
    graph: &impl Graph,
    partition: &mut Partition,
    gain_table: GainTableKind,
    max_passes: usize,
    fraction: f64,
    candidates: &mut Vec<(i64, NodeId, BlockId)>,
    obs: &ObsHandle,
) -> FmStats {
    let n = graph.n();
    if n == 0 || partition.k() <= 1 {
        return FmStats {
            moves: 0,
            gain_table_bytes: 0,
            passes: 0,
            moves_rolled_back: 0,
        };
    }
    let epsilon = partition.epsilon();
    let k = partition.k();
    let state = AtomicPartition::from_partition(partition);

    let cache = GainCache::new(gain_table, graph, &state.assignment, k);
    let gain_table_bytes = cache.memory_bytes();
    // Charge the gain table to the memory accounting for the duration of refinement —
    // this is the quantity Figure 7 (middle) compares across the three variants.
    let _scope = MemoryScope::charge_global(gain_table_bytes);

    obs.gauge_max(Counter::GainTableBytes, gain_table_bytes as u64);

    let mut total_moves = 0usize;
    let mut passes = 0usize;
    for pass in 0..max_passes {
        let mut pass_span = obs.span_at(SpanKind::Round, "fm_pass", pass as u64);
        passes += 1;
        obs.add(Counter::FmPasses, 1);
        // Collect boundary vertices together with their best move, reusing the scratch
        // buffer's capacity (order-preserving, so the sort below sees the same input as
        // a fresh collect would produce).
        (0..n as NodeId)
            .into_par_iter()
            .filter_map(|u| {
                let from = state.block(u);
                let mut adjacent_blocks: Vec<BlockId> = Vec::new();
                graph.for_each_neighbor(u, &mut |v, _| {
                    let b = state.block(v);
                    if b != from && !adjacent_blocks.contains(&b) {
                        adjacent_blocks.push(b);
                    }
                });
                if adjacent_blocks.is_empty() {
                    return None;
                }
                let from_affinity = cache.affinity(graph, &state.assignment, u, from) as i64;
                let mut best: Option<(i64, BlockId)> = None;
                for &to in &adjacent_blocks {
                    let gain =
                        cache.affinity(graph, &state.assignment, u, to) as i64 - from_affinity;
                    best = match best {
                        None => Some((gain, to)),
                        Some((bg, _)) if gain > bg => Some((gain, to)),
                        other => other,
                    };
                }
                let (gain, to) = best?;
                if gain > 0 {
                    Some((gain, u, to))
                } else {
                    None
                }
            })
            .collect_into_vec(candidates);
        pass_span.attr("candidates", candidates.len() as u64);
        if candidates.is_empty() {
            break;
        }
        // Highest gains first: mimics FM's priority-queue ordering.
        candidates.par_sort_unstable_by_key(|&(gain, u, _)| (std::cmp::Reverse(gain), u));
        let limit = ((candidates.len() as f64) * fraction.clamp(0.0, 1.0)).ceil() as usize;
        let moves = AtomicUsize::new(0);
        // Moves are applied sequentially in gain order: gains are re-validated against
        // the current assignment right before each move, so every applied move strictly
        // decreases the cut (gain collection above is the parallel part; see DESIGN.md
        // for this simplification relative to the paper's localized parallel FM).
        for &(_, u, to) in &candidates[..limit.min(candidates.len())] {
            let from = state.block(u);
            if from == to {
                continue;
            }
            let gain = cache.affinity(graph, &state.assignment, u, to) as i64
                - cache.affinity(graph, &state.assignment, u, from) as i64;
            if gain <= 0 {
                continue;
            }
            let node_weight = graph.node_weight(u);
            if state.try_move(u, node_weight, to) {
                cache.apply_move(graph, u, from, to);
                moves.fetch_add(1, Ordering::Relaxed);
            }
        }
        let pass_moves = moves.load(Ordering::Relaxed);
        pass_span.attr("moves", pass_moves as u64);
        obs.add(Counter::FmMovesAccepted, pass_moves as u64);
        total_moves += pass_moves;
        if pass_moves == 0 {
            break;
        }
    }

    *partition = state.into_partition(graph, epsilon);
    let cut = partition.edge_cut_on(graph);
    partition.set_cached_cut(cut);
    FmStats {
        moves: total_moves,
        gain_table_bytes,
        passes,
        moves_rolled_back: 0,
    }
}

/// Recomputes the edge cut improvement achievable by a single vertex move; used by tests
/// to validate the gain definition.
pub fn move_gain(graph: &impl Graph, partition: &Partition, u: NodeId, to: BlockId) -> i64 {
    let from = partition.block(u);
    let mut to_affinity: EdgeWeight = 0;
    let mut from_affinity: EdgeWeight = 0;
    graph.for_each_neighbor(u, &mut |v, w| {
        let b = partition.block(v);
        if b == to {
            to_affinity += w;
        }
        if b == from {
            from_affinity += w;
        }
    });
    to_affinity as i64 - from_affinity as i64
}

#[cfg(test)]
mod tests {
    use super::*;
    use graph::gen;

    /// A balanced but low-quality pseudo-random starting partition.
    fn scrambled_partition(graph: &impl Graph, k: usize, epsilon: f64) -> Partition {
        let assignment: Vec<BlockId> = (0..graph.n() as u32)
            .map(|u| (u.wrapping_mul(2_654_435_761) >> 8) % k as u32)
            .collect();
        Partition::from_assignment(graph, k, epsilon, assignment)
    }

    #[test]
    fn fm_improves_cut_with_every_gain_table_kind() {
        let g = gen::grid2d(16, 16);
        for kind in [
            GainTableKind::None,
            GainTableKind::Dense,
            GainTableKind::Sparse,
        ] {
            let mut p = scrambled_partition(&g, 4, 0.25);
            let before = p.edge_cut_on(&g);
            let stats = fm_refine(&g, &mut p, kind, 8, 1.0);
            let after = p.edge_cut_on(&g);
            assert!(stats.moves > 0, "{:?}: no moves", kind);
            assert!(after < before, "{:?}: cut {} -> {}", kind, before, after);
            assert!(p.is_balanced(), "{:?}: imbalance {}", kind, p.imbalance());
        }
    }

    #[test]
    fn all_gain_tables_reach_similar_quality() {
        let g = gen::rgg2d(800, 10, 5);
        let mut cuts = Vec::new();
        for kind in [
            GainTableKind::None,
            GainTableKind::Dense,
            GainTableKind::Sparse,
        ] {
            let mut p = scrambled_partition(&g, 8, 0.25);
            fm_refine(&g, &mut p, kind, 6, 1.0);
            cuts.push(p.edge_cut_on(&g) as f64);
        }
        let min = cuts.iter().cloned().fold(f64::INFINITY, f64::min);
        let max = cuts.iter().cloned().fold(0.0, f64::max);
        assert!(
            max / min < 1.3,
            "gain table kinds diverge in quality: {:?}",
            cuts
        );
    }

    #[test]
    fn gain_table_memory_ordering_matches_the_paper() {
        let g = gen::grid2d(24, 24);
        let k = 64;
        let mut sizes = std::collections::HashMap::new();
        for kind in [
            GainTableKind::None,
            GainTableKind::Dense,
            GainTableKind::Sparse,
        ] {
            let mut p = scrambled_partition(&g, k, 0.5);
            let stats = fm_refine(&g, &mut p, kind, 1, 1.0);
            sizes.insert(format!("{:?}", kind), stats.gain_table_bytes);
        }
        assert_eq!(sizes["None"], 0);
        assert!(sizes["Sparse"] > 0);
        assert!(
            sizes["Sparse"] < sizes["Dense"] / 4,
            "sparse table should be much smaller: {:?}",
            sizes
        );
    }

    #[test]
    fn move_gain_matches_cut_delta() {
        let g = gen::grid2d(6, 6);
        let p = scrambled_partition(&g, 3, 0.5);
        let before = p.edge_cut_on(&g);
        for u in [0 as NodeId, 7, 17, 35] {
            for to in 0..3 as BlockId {
                if to == p.block(u) {
                    continue;
                }
                let gain = move_gain(&g, &p, u, to);
                let mut moved = p.clone();
                moved.move_vertex(u, to, g.node_weight(u));
                let after = moved.edge_cut_on(&g);
                assert_eq!(before as i64 - after as i64, gain, "vertex {} to {}", u, to);
            }
        }
    }

    #[test]
    fn fm_is_a_noop_on_an_optimal_partition() {
        let g = gen::clique_chain(2, 10);
        let assignment: Vec<BlockId> = (0..20u32).map(|u| if u < 10 { 0 } else { 1 }).collect();
        let mut p = Partition::from_assignment(&g, 2, 0.03, assignment);
        let stats = fm_refine(&g, &mut p, GainTableKind::Sparse, 4, 1.0);
        assert_eq!(stats.moves, 0);
        assert_eq!(p.edge_cut_on(&g), 1);
    }

    #[test]
    fn empty_or_single_block_inputs() {
        let g = gen::path(5);
        let mut p = Partition::from_assignment(&g, 1, 0.03, vec![0; 5]);
        let stats = fm_refine(&g, &mut p, GainTableKind::Dense, 3, 1.0);
        assert_eq!(stats.moves, 0);
        assert_eq!(stats.passes, 0);
    }
}
