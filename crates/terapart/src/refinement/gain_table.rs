//! Gain tables for FM refinement (paper §V).
//!
//! A gain table caches, for vertex `u` and block `V_i`, the *affinity*
//! `ω(u, V_i) = Σ_{(u,v) ∈ E, v ∈ V_i} ω(u, v)`. The gain of moving `u` from its block to
//! `V_i` is then `ω(u, V_i) − ω(u, Π(u))` without touching the graph. After a move, the
//! affinities of the moved vertex's neighbours are updated.
//!
//! Three variants are provided, matching Figure 7 of the paper:
//!
//! * [`GainTableKind::None`] — no cache; affinities are recomputed from the graph on
//!   every query (slow but `O(1)` extra memory).
//! * [`GainTableKind::Dense`] — the standard table with `k` entries per vertex
//!   (`O(nk)` memory), updated with atomic fetch-add.
//! * [`GainTableKind::Sparse`] — the space-efficient table: vertices with
//!   `deg(v) > k` keep a dense atomic row, low-degree vertices use a tiny fixed-capacity
//!   linear-probing hash table of `Θ(deg(v))` slots protected by a spinlock; entries
//!   whose value drops to zero are removed by backward-shift deletion, keeping probe
//!   sequences intact (`O(m)` memory in total).

use std::sync::atomic::{AtomicU32, AtomicU64, Ordering};

use graph::traits::Graph;
use graph::{EdgeWeight, NodeId};
use parking_lot::Mutex;

use crate::context::GainTableKind;
use crate::partition::BlockId;

/// A gain cache initialised for a specific graph and partition assignment.
#[derive(Debug)]
pub enum GainCache {
    /// Gains recomputed from scratch on every query.
    None,
    /// Dense `n × k` affinity table.
    Dense(DenseGainTable),
    /// `O(m)` sparse affinity table.
    Sparse(SparseGainTable),
}

impl GainCache {
    /// Builds a gain cache of the requested kind from the current assignment.
    pub fn new(
        kind: GainTableKind,
        graph: &impl Graph,
        assignment: &[AtomicU32],
        k: usize,
    ) -> Self {
        match kind {
            GainTableKind::None => GainCache::None,
            GainTableKind::Dense => GainCache::Dense(DenseGainTable::new(graph, assignment, k)),
            GainTableKind::Sparse => GainCache::Sparse(SparseGainTable::new(graph, assignment, k)),
        }
    }

    /// Affinity of `u` towards `block` under the current `assignment`.
    pub fn affinity(
        &self,
        graph: &impl Graph,
        assignment: &[AtomicU32],
        u: NodeId,
        block: BlockId,
    ) -> EdgeWeight {
        match self {
            GainCache::None => {
                let mut total = 0;
                graph.for_each_neighbor(u, &mut |v, w| {
                    if assignment[v as usize].load(Ordering::Relaxed) == block {
                        total += w;
                    }
                });
                total
            }
            GainCache::Dense(table) => table.affinity(u, block),
            GainCache::Sparse(table) => table.affinity(u, block),
        }
    }

    /// Updates the cache after `u` moved from block `from` to block `to`: for every
    /// neighbour `v` of `u`, `ω(v, from)` decreases and `ω(v, to)` increases by the
    /// connecting edge weight.
    pub fn apply_move(&self, graph: &impl Graph, u: NodeId, from: BlockId, to: BlockId) {
        if from == to {
            return;
        }
        match self {
            GainCache::None => {}
            GainCache::Dense(table) => {
                graph.for_each_neighbor(u, &mut |v, w| table.update(v, from, to, w));
            }
            GainCache::Sparse(table) => {
                graph.for_each_neighbor(u, &mut |v, w| table.update(v, from, to, w));
            }
        }
    }

    /// Number of heap bytes occupied by the cache (reported in Figure 7).
    pub fn memory_bytes(&self) -> usize {
        match self {
            GainCache::None => 0,
            GainCache::Dense(table) => table.memory_bytes(),
            GainCache::Sparse(table) => table.memory_bytes(),
        }
    }
}

/// The standard dense gain table: `k` atomic affinity entries per vertex.
#[derive(Debug)]
pub struct DenseGainTable {
    k: usize,
    affinities: Vec<AtomicU64>,
}

impl DenseGainTable {
    /// Builds the table from the current assignment.
    pub fn new(graph: &impl Graph, assignment: &[AtomicU32], k: usize) -> Self {
        let n = graph.n();
        let mut affinities = Vec::with_capacity(n * k);
        affinities.resize_with(n * k, || AtomicU64::new(0));
        let table = Self { k, affinities };
        for u in 0..n as NodeId {
            graph.for_each_neighbor(u, &mut |v, w| {
                let block = assignment[v as usize].load(Ordering::Relaxed);
                table.affinities[u as usize * k + block as usize].fetch_add(w, Ordering::Relaxed);
            });
        }
        table
    }

    /// Affinity of `u` towards `block`.
    pub fn affinity(&self, u: NodeId, block: BlockId) -> EdgeWeight {
        self.affinities[u as usize * self.k + block as usize].load(Ordering::Relaxed)
    }

    /// Applies the affinity delta for neighbour `v` after a move `from → to`.
    pub fn update(&self, v: NodeId, from: BlockId, to: BlockId, weight: EdgeWeight) {
        self.affinities[v as usize * self.k + from as usize].fetch_sub(weight, Ordering::Relaxed);
        self.affinities[v as usize * self.k + to as usize].fetch_add(weight, Ordering::Relaxed);
    }

    /// Heap bytes used by the table.
    pub fn memory_bytes(&self) -> usize {
        self.affinities.len() * std::mem::size_of::<AtomicU64>()
    }
}

/// Per-vertex storage of the sparse gain table.
#[derive(Debug)]
enum SparseRow {
    /// Dense atomic row for vertices with `deg(v) > k`.
    Dense(Vec<AtomicU64>),
    /// Fixed-capacity linear-probing hash table for low-degree vertices, protected by a
    /// spinlock because deletions shift entries.
    Small(Mutex<SmallAffinityMap>),
}

/// A tiny open-addressing map from block IDs to affinities with backward-shift deletion.
#[derive(Debug)]
struct SmallAffinityMap {
    keys: Vec<BlockId>,
    values: Vec<EdgeWeight>,
    len: usize,
}

const EMPTY_BLOCK: BlockId = BlockId::MAX;

impl SmallAffinityMap {
    fn new(capacity: usize) -> Self {
        let capacity = capacity.next_power_of_two().max(4);
        Self {
            keys: vec![EMPTY_BLOCK; capacity],
            values: vec![0; capacity],
            len: 0,
        }
    }

    fn mask(&self) -> usize {
        self.keys.len() - 1
    }

    fn slot_of(&self, key: BlockId) -> usize {
        ((key as u64).wrapping_mul(0x9E37_79B9_7F4A_7C15) >> 33) as usize & self.mask()
    }

    fn get(&self, key: BlockId) -> EdgeWeight {
        let mut slot = self.slot_of(key);
        loop {
            if self.keys[slot] == key {
                return self.values[slot];
            }
            if self.keys[slot] == EMPTY_BLOCK {
                return 0;
            }
            slot = (slot + 1) & self.mask();
        }
    }

    fn add(&mut self, key: BlockId, delta: i64) {
        let mut slot = self.slot_of(key);
        loop {
            if self.keys[slot] == key {
                let new = self.values[slot] as i64 + delta;
                debug_assert!(new >= 0, "affinity must stay non-negative");
                if new == 0 {
                    self.remove_at(slot);
                } else {
                    self.values[slot] = new as EdgeWeight;
                }
                return;
            }
            if self.keys[slot] == EMPTY_BLOCK {
                if delta <= 0 {
                    // Nothing to remove; negative deltas on absent keys are ignored
                    // (they can only arise from rounding in callers, never from FM).
                    return;
                }
                assert!(
                    self.len < self.keys.len(),
                    "sparse gain table row overflow: a vertex is adjacent to more blocks than its capacity"
                );
                self.keys[slot] = key;
                self.values[slot] = delta as EdgeWeight;
                self.len += 1;
                return;
            }
            slot = (slot + 1) & self.mask();
        }
    }

    /// Removes the entry at `slot`, shifting up later entries of the probe sequence to
    /// keep lookups correct (backward-shift deletion, paper §V).
    fn remove_at(&mut self, mut slot: usize) {
        self.keys[slot] = EMPTY_BLOCK;
        self.values[slot] = 0;
        self.len -= 1;
        let mask = self.mask();
        let mut next = (slot + 1) & mask;
        while self.keys[next] != EMPTY_BLOCK {
            let ideal = self.slot_of(self.keys[next]);
            // The entry at `next` may move up if its ideal slot is not within the
            // (slot, next] range, i.e. it was displaced past `slot`.
            let between = if slot < next {
                ideal > slot && ideal <= next
            } else {
                ideal > slot || ideal <= next
            };
            if !between {
                self.keys[slot] = self.keys[next];
                self.values[slot] = self.values[next];
                self.keys[next] = EMPTY_BLOCK;
                self.values[next] = 0;
                slot = next;
            }
            next = (next + 1) & mask;
        }
    }

    fn memory_bytes(&self) -> usize {
        self.keys.len() * std::mem::size_of::<BlockId>()
            + self.values.len() * std::mem::size_of::<EdgeWeight>()
    }
}

/// The space-efficient `O(m)` gain table.
#[derive(Debug)]
pub struct SparseGainTable {
    rows: Vec<SparseRow>,
    k: usize,
}

impl SparseGainTable {
    /// Builds the table from the current assignment.
    pub fn new(graph: &impl Graph, assignment: &[AtomicU32], k: usize) -> Self {
        let n = graph.n();
        let mut rows = Vec::with_capacity(n);
        for u in 0..n as NodeId {
            let degree = graph.degree(u);
            if degree > k {
                let mut row = Vec::with_capacity(k);
                row.resize_with(k, || AtomicU64::new(0));
                rows.push(SparseRow::Dense(row));
            } else {
                // Capacity Θ(deg(v)): the vertex can be adjacent to at most deg(v) blocks.
                rows.push(SparseRow::Small(Mutex::new(SmallAffinityMap::new(
                    2 * degree.max(1),
                ))));
            }
        }
        let table = Self { rows, k };
        for u in 0..n as NodeId {
            graph.for_each_neighbor(u, &mut |v, w| {
                let block = assignment[v as usize].load(Ordering::Relaxed);
                table.add(u, block, w as i64);
            });
        }
        table
    }

    fn add(&self, u: NodeId, block: BlockId, delta: i64) {
        match &self.rows[u as usize] {
            SparseRow::Dense(row) => {
                if delta >= 0 {
                    row[block as usize].fetch_add(delta as u64, Ordering::Relaxed);
                } else {
                    row[block as usize].fetch_sub((-delta) as u64, Ordering::Relaxed);
                }
            }
            SparseRow::Small(map) => map.lock().add(block, delta),
        }
    }

    /// Affinity of `u` towards `block`.
    pub fn affinity(&self, u: NodeId, block: BlockId) -> EdgeWeight {
        match &self.rows[u as usize] {
            SparseRow::Dense(row) => row[block as usize].load(Ordering::Relaxed),
            SparseRow::Small(map) => map.lock().get(block),
        }
    }

    /// Applies the affinity delta for neighbour `v` after a move `from → to`.
    pub fn update(&self, v: NodeId, from: BlockId, to: BlockId, weight: EdgeWeight) {
        self.add(v, from, -(weight as i64));
        self.add(v, to, weight as i64);
    }

    /// Heap bytes used by the table.
    pub fn memory_bytes(&self) -> usize {
        let _ = self.k;
        self.rows
            .iter()
            .map(|row| match row {
                SparseRow::Dense(r) => r.len() * std::mem::size_of::<AtomicU64>(),
                SparseRow::Small(m) => m.lock().memory_bytes(),
            })
            .sum()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use graph::gen;
    use rand::prelude::*;
    use rand_chacha::ChaCha8Rng;

    fn atomic_assignment(assignment: &[BlockId]) -> Vec<AtomicU32> {
        assignment.iter().map(|&b| AtomicU32::new(b)).collect()
    }

    /// Brute-force affinity used as the ground truth.
    fn reference_affinity(
        graph: &impl Graph,
        assignment: &[AtomicU32],
        u: NodeId,
        block: BlockId,
    ) -> EdgeWeight {
        let mut total = 0;
        graph.for_each_neighbor(u, &mut |v, w| {
            if assignment[v as usize].load(Ordering::Relaxed) == block {
                total += w;
            }
        });
        total
    }

    fn check_all_affinities(
        graph: &impl Graph,
        assignment: &[AtomicU32],
        cache: &GainCache,
        k: usize,
    ) {
        for u in 0..graph.n() as NodeId {
            for b in 0..k as BlockId {
                assert_eq!(
                    cache.affinity(graph, assignment, u, b),
                    reference_affinity(graph, assignment, u, b),
                    "affinity mismatch at vertex {} block {}",
                    u,
                    b
                );
            }
        }
    }

    #[test]
    fn all_kinds_agree_with_reference_initially() {
        let g = gen::with_random_edge_weights(&gen::grid2d(8, 8), 5, 1);
        let k = 4;
        let assignment: Vec<BlockId> = (0..g.n() as u32).map(|u| u % k as u32).collect();
        let atomics = atomic_assignment(&assignment);
        for kind in [
            GainTableKind::None,
            GainTableKind::Dense,
            GainTableKind::Sparse,
        ] {
            let cache = GainCache::new(kind, &g, &atomics, k);
            check_all_affinities(&g, &atomics, &cache, k);
        }
    }

    #[test]
    fn caches_stay_consistent_under_random_moves() {
        let g = gen::with_random_edge_weights(&gen::erdos_renyi(60, 300, 7), 9, 2);
        let k = 6;
        let mut rng = ChaCha8Rng::seed_from_u64(99);
        let assignment: Vec<BlockId> = (0..g.n() as u32).map(|u| u % k as u32).collect();
        let atomics = atomic_assignment(&assignment);
        let dense = GainCache::new(GainTableKind::Dense, &g, &atomics, k);
        let sparse = GainCache::new(GainTableKind::Sparse, &g, &atomics, k);
        for _ in 0..200 {
            let u = rng.gen_range(0..g.n()) as NodeId;
            let from = atomics[u as usize].load(Ordering::Relaxed);
            let to = rng.gen_range(0..k as BlockId);
            if from == to {
                continue;
            }
            atomics[u as usize].store(to, Ordering::Relaxed);
            dense.apply_move(&g, u, from, to);
            sparse.apply_move(&g, u, from, to);
        }
        check_all_affinities(&g, &atomics, &dense, k);
        check_all_affinities(&g, &atomics, &sparse, k);
    }

    #[test]
    fn sparse_table_uses_less_memory_than_dense_for_large_k() {
        let g = gen::grid2d(30, 30); // max degree 4, so deg << k
        let k = 128;
        let assignment: Vec<BlockId> = (0..g.n() as u32).map(|u| u % k as u32).collect();
        let atomics = atomic_assignment(&assignment);
        let dense = GainCache::new(GainTableKind::Dense, &g, &atomics, k);
        let sparse = GainCache::new(GainTableKind::Sparse, &g, &atomics, k);
        assert!(dense.memory_bytes() >= g.n() * k * 8);
        assert!(
            sparse.memory_bytes() * 4 < dense.memory_bytes(),
            "sparse table not substantially smaller: {} vs {}",
            sparse.memory_bytes(),
            dense.memory_bytes()
        );
        assert_eq!(
            GainCache::new(GainTableKind::None, &g, &atomics, k).memory_bytes(),
            0
        );
    }

    #[test]
    fn high_degree_vertices_fall_back_to_dense_rows() {
        let g = gen::star(64);
        let k = 4; // hub degree 63 > k
        let assignment: Vec<BlockId> = (0..g.n() as u32).map(|u| u % k as u32).collect();
        let atomics = atomic_assignment(&assignment);
        let sparse = GainCache::new(GainTableKind::Sparse, &g, &atomics, k);
        check_all_affinities(&g, &atomics, &sparse, k);
    }

    #[test]
    fn small_map_backward_shift_deletion_keeps_lookups_correct() {
        let mut map = SmallAffinityMap::new(8);
        for b in 0..6u32 {
            map.add(b, 10);
        }
        // Remove a middle element and verify the rest are still reachable.
        map.add(2, -10);
        assert_eq!(map.get(2), 0);
        for b in [0u32, 1, 3, 4, 5] {
            assert_eq!(map.get(b), 10, "block {} lost after deletion", b);
        }
        // Re-insert and delete everything.
        map.add(2, 7);
        assert_eq!(map.get(2), 7);
        for b in 0..6u32 {
            map.add(b, -(map.get(b) as i64));
        }
        assert_eq!(map.len, 0);
    }
}
