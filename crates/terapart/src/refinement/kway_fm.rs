//! Priority-queue k-way FM refinement (the classic FM discipline on top of the
//! paper's gain tables).
//!
//! [`fm`](super::fm) applies only positive-gain moves in batched passes; this module is
//! the full Fiduccia–Mattheyses local search over all `k` blocks: a max-heap of
//! `(gain, vertex, target)` candidates drives the move order, moves with *negative* gain
//! are allowed (hill climbing) and the pass is rolled back to the best prefix seen, so
//! the search escapes local minima the batched scheme cannot leave. Gains come from the
//! same [`GainCache`] variants as the batched path (none / dense `O(nk)` / sparse
//! `O(m)`, paper §V) and are maintained incrementally after every move exactly like the
//! 2-way FM of the initial partitioner ([`crate::initial::bipartition`]): moving `u`
//! bumps the stamp of each neighbour and re-inserts its best feasible move, and stale
//! heap entries are rejected by their stamp.
//!
//! # Determinism
//!
//! The candidate seeding and the gain-cache construction are parallel
//! (order-preserving), while the move loop itself is sequential: heap entries are
//! totally ordered by `(gain, vertex, target, stamp)`, so for a fixed seed the applied
//! move sequence — and therefore the refined partition — is bit-identical at any thread
//! count and on any graph representation that decodes the same neighbourhoods (CSR,
//! compressed, paged). This matches the determinism invariant of initial partitioning
//! and makes the algorithm usable in golden-cut regression tests.

use std::collections::BinaryHeap;
use std::sync::atomic::{AtomicU32, Ordering};

use graph::traits::Graph;
use graph::{NodeId, NodeWeight};
use memtrack::MemoryScope;
use obs::{Counter, ObsHandle, SpanKind};
use rayon::prelude::*;

use crate::context::GainTableKind;
use crate::partition::{BlockId, Partition};

use super::fm::FmStats;
use super::gain_table::GainCache;

/// A heap candidate: the move of `vertex` to `target` with `gain`, valid while the
/// vertex's stamp still equals `stamp`. The derived lexicographic order (gain first)
/// makes the `BinaryHeap` pop the highest-gain move; the remaining fields give every
/// entry a unique rank, so the pop sequence is independent of insertion order.
type Candidate = (i64, NodeId, BlockId, u64);

/// Best feasible move of `u` under the current assignment: the adjacent block with the
/// highest affinity gain whose weight constraint admits `u` (ties broken towards the
/// lower block ID). Moves that would empty the source block are rejected so the
/// partition keeps exactly `k` non-empty blocks.
fn best_feasible_move(
    graph: &impl Graph,
    cache: &GainCache,
    assignment: &[AtomicU32],
    block_weights: &[NodeWeight],
    max_block_weight: NodeWeight,
    u: NodeId,
) -> Option<(i64, BlockId)> {
    let from = assignment[u as usize].load(Ordering::Relaxed);
    let node_weight = graph.node_weight(u);
    if block_weights[from as usize] <= node_weight {
        return None;
    }
    let mut adjacent: Vec<BlockId> = Vec::new();
    graph.for_each_neighbor(u, &mut |v, _| {
        let b = assignment[v as usize].load(Ordering::Relaxed);
        if b != from && !adjacent.contains(&b) {
            adjacent.push(b);
        }
    });
    if adjacent.is_empty() {
        return None;
    }
    let from_affinity = cache.affinity(graph, assignment, u, from) as i64;
    let mut best: Option<(i64, BlockId)> = None;
    for &to in &adjacent {
        if block_weights[to as usize] + node_weight > max_block_weight {
            continue;
        }
        let gain = cache.affinity(graph, assignment, u, to) as i64 - from_affinity;
        let better = match best {
            None => true,
            Some((bg, bt)) => gain > bg || (gain == bg && to < bt),
        };
        if better {
            best = Some((gain, to));
        }
    }
    best
}

/// Runs priority-queue k-way FM refinement on `partition`.
///
/// Each pass seeds the heap with every boundary vertex's best feasible move, then pops
/// candidates in gain order: stale entries (stamp mismatch) are dropped, entries whose
/// recomputed best move changed are re-inserted, and valid entries are applied — also
/// when the gain is negative. A pass records the prefix of the move sequence with the
/// best total gain and rolls back everything after it; it stops once `adverse_limit`
/// consecutive moves fail to produce a new best prefix (bounded hill climbing). Passes
/// repeat up to `max_passes` times or until a pass keeps no move.
pub fn kway_fm_refine(
    graph: &impl Graph,
    partition: &mut Partition,
    gain_table: GainTableKind,
    max_passes: usize,
    adverse_limit: usize,
) -> FmStats {
    kway_fm_refine_obs(
        graph,
        partition,
        gain_table,
        max_passes,
        adverse_limit,
        &ObsHandle::noop(),
    )
}

/// [`kway_fm_refine`] with an observability handle: each pass is an `fm_pass` round
/// span (with accepted/rolled-back move attributes) and the totals feed the unified
/// counter registry.
pub(crate) fn kway_fm_refine_obs(
    graph: &impl Graph,
    partition: &mut Partition,
    gain_table: GainTableKind,
    max_passes: usize,
    adverse_limit: usize,
    obs: &ObsHandle,
) -> FmStats {
    let n = graph.n();
    let k = partition.k();
    if n == 0 || k <= 1 || max_passes == 0 {
        return FmStats {
            moves: 0,
            gain_table_bytes: 0,
            passes: 0,
            moves_rolled_back: 0,
        };
    }
    let epsilon = partition.epsilon();
    let max_block_weight = partition.max_block_weight();
    let assignment: Vec<AtomicU32> = partition
        .assignment()
        .iter()
        .map(|&b| AtomicU32::new(b))
        .collect();
    let mut block_weights: Vec<NodeWeight> = partition.block_weights().to_vec();

    let cache = GainCache::new(gain_table, graph, &assignment, k);
    let gain_table_bytes = cache.memory_bytes();
    // Charged for the duration of refinement, like the batched FM path (Figure 7).
    let _scope = MemoryScope::charge_global(gain_table_bytes);

    let mut stamps: Vec<u64> = vec![0; n];
    let mut locked: Vec<bool> = vec![false; n];
    let mut heap: BinaryHeap<Candidate> = BinaryHeap::new();
    let mut seeds: Vec<(i64, NodeId, BlockId)> = Vec::new();
    let mut move_log: Vec<(NodeId, BlockId, BlockId)> = Vec::new();

    obs.gauge_max(Counter::GainTableBytes, gain_table_bytes as u64);

    let mut total_moves = 0usize;
    let mut total_rolled_back = 0usize;
    let mut passes = 0usize;
    for pass in 0..max_passes {
        let mut pass_span = obs.span_at(SpanKind::Round, "fm_pass", pass as u64);
        passes += 1;
        obs.add(Counter::FmPasses, 1);
        // Parallel, order-preserving seeding; the heap's total order makes the pop
        // sequence independent of the insertion order anyway.
        {
            let assignment = &assignment;
            let block_weights = &block_weights;
            let cache = &cache;
            (0..n as NodeId)
                .into_par_iter()
                .filter_map(|u| {
                    best_feasible_move(graph, cache, assignment, block_weights, max_block_weight, u)
                        .map(|(gain, to)| (gain, u, to))
                })
                .collect_into_vec(&mut seeds);
        }
        if seeds.is_empty() {
            break;
        }
        heap.clear();
        for &(gain, u, to) in &seeds {
            heap.push((gain, u, to, stamps[u as usize]));
        }
        move_log.clear();
        let mut total_gain = 0i64;
        let mut best_gain = 0i64;
        let mut best_len = 0usize;
        let mut since_best = 0usize;
        while let Some((gain, u, to, stamp)) = heap.pop() {
            if since_best > adverse_limit {
                break;
            }
            if locked[u as usize] || stamp != stamps[u as usize] {
                continue;
            }
            let current = best_feasible_move(
                graph,
                &cache,
                &assignment,
                &block_weights,
                max_block_weight,
                u,
            );
            let (current_gain, current_to) = match current {
                None => continue,
                Some(best) => best,
            };
            if (current_gain, current_to) != (gain, to) {
                // The entry went stale without a stamp bump (a block filled up or
                // drained); re-insert the corrected move and retry later.
                stamps[u as usize] += 1;
                heap.push((current_gain, u, current_to, stamps[u as usize]));
                continue;
            }
            let from = assignment[u as usize].load(Ordering::Relaxed);
            let node_weight = graph.node_weight(u);
            assignment[u as usize].store(to, Ordering::Relaxed);
            block_weights[from as usize] -= node_weight;
            block_weights[to as usize] += node_weight;
            cache.apply_move(graph, u, from, to);
            locked[u as usize] = true;
            move_log.push((u, from, to));
            total_gain += gain;
            since_best += 1;
            if total_gain > best_gain {
                best_gain = total_gain;
                best_len = move_log.len();
                since_best = 0;
            }
            graph.for_each_neighbor(u, &mut |v, _| {
                if !locked[v as usize] {
                    stamps[v as usize] += 1;
                    if let Some((gv, tv)) = best_feasible_move(
                        graph,
                        &cache,
                        &assignment,
                        &block_weights,
                        max_block_weight,
                        v,
                    ) {
                        heap.push((gv, v, tv, stamps[v as usize]));
                    }
                }
            });
        }
        // Roll back the adverse tail: keep only the best prefix of the move sequence.
        let rolled_back = move_log.len() - best_len;
        for &(u, from, to) in move_log[best_len..].iter().rev() {
            let node_weight = graph.node_weight(u);
            assignment[u as usize].store(from, Ordering::Relaxed);
            block_weights[to as usize] -= node_weight;
            block_weights[from as usize] += node_weight;
            cache.apply_move(graph, u, to, from);
        }
        pass_span.attr("moves", best_len as u64);
        pass_span.attr("rolled_back", rolled_back as u64);
        obs.add(Counter::FmMovesAccepted, best_len as u64);
        obs.add(Counter::FmMovesRolledBack, rolled_back as u64);
        total_moves += best_len;
        total_rolled_back += rolled_back;
        for l in locked.iter_mut() {
            *l = false;
        }
        if best_len == 0 {
            break;
        }
    }

    let final_assignment: Vec<BlockId> = assignment
        .into_iter()
        .map(|a| a.load(Ordering::Relaxed))
        .collect();
    *partition = Partition::from_assignment(graph, k, epsilon, final_assignment);
    let cut = partition.edge_cut_on(graph);
    partition.set_cached_cut(cut);
    FmStats {
        moves: total_moves,
        gain_table_bytes,
        passes,
        moves_rolled_back: total_rolled_back,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use graph::gen;

    fn scrambled(graph: &impl Graph, k: usize, epsilon: f64) -> Partition {
        let assignment: Vec<BlockId> = (0..graph.n() as u32)
            .map(|u| (u.wrapping_mul(2_654_435_761) >> 8) % k as u32)
            .collect();
        Partition::from_assignment(graph, k, epsilon, assignment)
    }

    #[test]
    fn improves_cut_with_every_gain_table_kind() {
        let g = gen::grid2d(16, 16);
        for kind in [
            GainTableKind::None,
            GainTableKind::Dense,
            GainTableKind::Sparse,
        ] {
            let mut p = scrambled(&g, 4, 0.25);
            let before = p.edge_cut_on(&g);
            let stats = kway_fm_refine(&g, &mut p, kind, 8, 64);
            let after = p.edge_cut_on(&g);
            assert!(stats.moves > 0, "{:?}: no moves", kind);
            assert!(after < before, "{:?}: cut {} -> {}", kind, before, after);
            assert!(p.is_balanced(), "{:?}: imbalance {}", kind, p.imbalance());
        }
    }

    #[test]
    fn beats_or_matches_the_batched_fm() {
        let g = gen::rgg2d(800, 10, 5);
        let mut batched = scrambled(&g, 8, 0.25);
        let mut kway = batched.clone();
        super::super::fm::fm_refine(&g, &mut batched, GainTableKind::Sparse, 8, 1.0);
        kway_fm_refine(&g, &mut kway, GainTableKind::Sparse, 8, 64);
        assert!(
            kway.edge_cut_on(&g) <= batched.edge_cut_on(&g),
            "priority-queue FM worse than batched FM: {} vs {}",
            kway.edge_cut_on(&g),
            batched.edge_cut_on(&g)
        );
    }

    #[test]
    fn untangles_an_alternating_clique_bisection() {
        let g = gen::clique_chain(2, 8);
        let assignment: Vec<BlockId> = (0..16u32).map(|u| if u % 2 == 0 { 0 } else { 1 }).collect();
        let mut p = Partition::from_assignment(&g, 2, 0.3, assignment);
        let before = p.edge_cut_on(&g);
        let stats = kway_fm_refine(&g, &mut p, GainTableKind::Sparse, 8, 64);
        let after = p.edge_cut_on(&g);
        assert!(stats.moves > 0);
        assert!(after < before, "cut {} -> {}", before, after);
        assert!(p.is_balanced());
    }

    #[test]
    fn zero_gain_plateau_is_escaped_by_hill_climbing() {
        // A cycle cut into four arcs of equal length: every boundary move has gain 0
        // (one neighbour per side), so a positive-gain-only scheme is frozen at cut 4.
        // Sliding arc boundaries via zero-gain moves merges arcs and reaches a lower
        // cut; only the rollback-to-best-prefix discipline can keep such a sequence.
        let g = gen::cycle(16);
        let assignment: Vec<BlockId> = (0..16u32).map(|u| (u / 4) % 2).collect();
        let mut p = Partition::from_assignment(&g, 2, 0.6, assignment);
        assert_eq!(p.edge_cut_on(&g), 4);
        kway_fm_refine(&g, &mut p, GainTableKind::Sparse, 8, 64);
        let after = p.edge_cut_on(&g);
        assert!(after < 4, "plateau not escaped: cut still {}", after);
        assert!(p.is_balanced());
    }

    #[test]
    fn respects_the_balance_constraint() {
        let g = gen::star(101);
        let assignment: Vec<BlockId> = (0..101u32).map(|u| u % 4).collect();
        let mut p = Partition::from_assignment(&g, 4, 0.03, assignment);
        kway_fm_refine(&g, &mut p, GainTableKind::Sparse, 4, 64);
        assert!(p.is_balanced(), "imbalance {}", p.imbalance());
    }

    #[test]
    fn never_empties_a_block() {
        let g = gen::grid2d(8, 8);
        let mut p = scrambled(&g, 8, 0.5);
        kway_fm_refine(&g, &mut p, GainTableKind::Dense, 6, 64);
        for b in 0..8u32 {
            assert!(p.block_weight(b) > 0, "block {} emptied", b);
        }
    }

    #[test]
    fn noop_on_an_optimal_partition_and_degenerate_inputs() {
        let g = gen::clique_chain(2, 10);
        let assignment: Vec<BlockId> = (0..20u32).map(|u| if u < 10 { 0 } else { 1 }).collect();
        let mut p = Partition::from_assignment(&g, 2, 0.03, assignment);
        let stats = kway_fm_refine(&g, &mut p, GainTableKind::Sparse, 4, 64);
        assert_eq!(stats.moves, 0);
        assert_eq!(p.edge_cut_on(&g), 1);

        let path = gen::path(5);
        let mut single = Partition::from_assignment(&path, 1, 0.03, vec![0; 5]);
        let stats = kway_fm_refine(&path, &mut single, GainTableKind::Dense, 3, 64);
        assert_eq!(stats.moves, 0);
        assert_eq!(stats.passes, 0);
    }

    #[test]
    fn deterministic_across_thread_counts() {
        let g = gen::rgg2d(600, 10, 9);
        let reference = {
            let pool = rayon::ThreadPoolBuilder::new()
                .num_threads(1)
                .build()
                .unwrap();
            let mut p = scrambled(&g, 6, 0.1);
            pool.install(|| kway_fm_refine(&g, &mut p, GainTableKind::Sparse, 4, 64));
            p
        };
        for threads in [2, 4] {
            let pool = rayon::ThreadPoolBuilder::new()
                .num_threads(threads)
                .build()
                .unwrap();
            let mut p = scrambled(&g, 6, 0.1);
            pool.install(|| kway_fm_refine(&g, &mut p, GainTableKind::Sparse, 4, 64));
            assert_eq!(
                p.assignment(),
                reference.assignment(),
                "{} threads diverged",
                threads
            );
        }
    }
}
