//! Size-constrained label propagation refinement (paper §II-B).
//!
//! This is KaMinPar's default refinement algorithm and the refinement used by
//! TeraPart-LP. Starting from the projected partition, vertices are visited in parallel
//! and moved to the adjacent block with the strongest connection, provided the move
//! strictly improves the connection weight and the target block stays within the balance
//! constraint. Its auxiliary memory is proportional to `k` (per-thread block-rating
//! maps), which the paper notes is negligible compared to the clustering stage.

use std::sync::atomic::{AtomicU32, AtomicU64, AtomicUsize, Ordering};

use graph::traits::Graph;
use graph::{NodeId, NodeWeight};
use rand::prelude::*;
use rand_chacha::ChaCha8Rng;
use rayon::prelude::*;

use crate::coarsening::rating_map::FixedCapacityHashMap;
use crate::partition::{BlockId, Partition};

/// Shared atomic view of a partition used by the parallel refinement algorithms.
pub(crate) struct AtomicPartition {
    pub assignment: Vec<AtomicU32>,
    pub block_weights: Vec<AtomicU64>,
    pub max_block_weight: NodeWeight,
    pub k: usize,
}

impl AtomicPartition {
    pub fn from_partition(partition: &Partition) -> Self {
        Self {
            assignment: partition.assignment().iter().map(|&b| AtomicU32::new(b)).collect(),
            block_weights: partition.block_weights().iter().map(|&w| AtomicU64::new(w)).collect(),
            max_block_weight: partition.max_block_weight(),
            k: partition.k(),
        }
    }

    pub fn block(&self, u: NodeId) -> BlockId {
        self.assignment[u as usize].load(Ordering::Relaxed)
    }

    /// Attempts to move `u` to `target`, enforcing the balance constraint on the target
    /// block with a CAS loop. Returns `true` on success.
    pub fn try_move(&self, u: NodeId, node_weight: NodeWeight, target: BlockId) -> bool {
        let source = self.block(u);
        if source == target {
            return false;
        }
        let target_weight = &self.block_weights[target as usize];
        let mut observed = target_weight.load(Ordering::Relaxed);
        loop {
            if observed + node_weight > self.max_block_weight {
                return false;
            }
            match target_weight.compare_exchange_weak(
                observed,
                observed + node_weight,
                Ordering::Relaxed,
                Ordering::Relaxed,
            ) {
                Ok(_) => break,
                Err(actual) => observed = actual,
            }
        }
        self.block_weights[source as usize].fetch_sub(node_weight, Ordering::Relaxed);
        self.assignment[u as usize].store(target, Ordering::Relaxed);
        true
    }

    /// Writes the atomic state back into a `Partition`.
    pub fn into_partition(self, graph: &impl Graph, epsilon: f64) -> Partition {
        let assignment: Vec<BlockId> =
            self.assignment.into_iter().map(|a| a.into_inner()).collect();
        Partition::from_assignment(graph, self.k, epsilon, assignment)
    }
}

/// Runs `rounds` rounds of size-constrained label propagation refinement on `partition`.
///
/// Returns the number of vertex moves performed.
pub fn lp_refine(
    graph: &impl Graph,
    partition: &mut Partition,
    rounds: usize,
    seed: u64,
) -> usize {
    let n = graph.n();
    if n == 0 || partition.k() <= 1 {
        return 0;
    }
    let epsilon = partition.epsilon();
    let state = AtomicPartition::from_partition(partition);
    let k = state.k;
    let mut total_moves = 0usize;

    for round in 0..rounds {
        let mut order: Vec<NodeId> = (0..n as NodeId).collect();
        let mut rng = ChaCha8Rng::seed_from_u64(seed ^ (round as u64) << 17);
        order.shuffle(&mut rng);
        let moves = AtomicUsize::new(0);
        order.par_chunks(256).for_each(|chunk| {
            let mut ratings = FixedCapacityHashMap::new(k.min(1 + graph.max_degree()));
            for &u in chunk {
                let current = state.block(u);
                ratings.clear();
                let mut has_external = false;
                graph.for_each_neighbor(u, &mut |v, w| {
                    let block = state.block(v);
                    ratings.add(block, w);
                    has_external |= block != current;
                });
                if !has_external {
                    continue;
                }
                let node_weight = graph.node_weight(u);
                let current_affinity = ratings.get(current);
                // Choose the feasible block with the highest affinity; move only on a
                // strict improvement to avoid oscillation.
                let mut best: Option<(BlockId, u64)> = None;
                for (block, affinity) in ratings.iter() {
                    if block == current || affinity <= current_affinity {
                        continue;
                    }
                    let feasible = state.block_weights[block as usize].load(Ordering::Relaxed)
                        + node_weight
                        <= state.max_block_weight;
                    if !feasible {
                        continue;
                    }
                    best = match best {
                        None => Some((block, affinity)),
                        Some((_, bw)) if affinity > bw => Some((block, affinity)),
                        other => other,
                    };
                }
                if let Some((target, _)) = best {
                    if state.try_move(u, node_weight, target) {
                        moves.fetch_add(1, Ordering::Relaxed);
                    }
                }
            }
        });
        let round_moves = moves.load(Ordering::Relaxed);
        total_moves += round_moves;
        if round_moves == 0 {
            break;
        }
    }

    *partition = state.into_partition(graph, epsilon);
    let cut = partition.edge_cut_on(graph);
    partition.set_cached_cut(cut);
    total_moves
}

#[cfg(test)]
mod tests {
    use super::*;
    use graph::gen;

    #[test]
    fn refinement_never_worsens_the_cut() {
        let g = gen::grid2d(16, 16);
        // A poor (pseudo-random but balanced) initial partition.
        let assignment: Vec<BlockId> =
            (0..g.n() as u32).map(|u| (u.wrapping_mul(2_654_435_761) >> 8) % 4).collect();
        let mut p = Partition::from_assignment(&g, 4, 0.1, assignment);
        let before = p.edge_cut_on(&g);
        let moves = lp_refine(&g, &mut p, 5, 1);
        let after = p.edge_cut_on(&g);
        assert!(moves > 0, "expected some improving moves");
        assert!(after < before, "cut did not improve: {} -> {}", before, after);
        assert!(p.is_balanced() || p.imbalance() <= 0.1 + 1e-9);
    }

    #[test]
    fn balance_constraint_is_never_violated_by_moves() {
        let g = gen::complete(20);
        let assignment: Vec<BlockId> = (0..20u32).map(|u| u % 4).collect();
        let mut p = Partition::from_assignment(&g, 4, 0.0, assignment);
        let max = p.max_block_weight();
        lp_refine(&g, &mut p, 5, 3);
        assert!(p.block_weights().iter().all(|&w| w <= max));
        assert_eq!(p.block_weights().iter().sum::<NodeWeight>(), 20);
    }

    #[test]
    fn perfect_partition_stays_untouched() {
        // Two cliques, perfectly split: no move can improve the single-bridge cut.
        let g = gen::clique_chain(2, 8);
        let assignment: Vec<BlockId> = (0..16u32).map(|u| if u < 8 { 0 } else { 1 }).collect();
        let mut p = Partition::from_assignment(&g, 2, 0.03, assignment.clone());
        lp_refine(&g, &mut p, 3, 5);
        assert_eq!(p.edge_cut_on(&g), 1);
        assert_eq!(p.assignment(), assignment.as_slice());
    }

    #[test]
    fn single_block_is_a_noop() {
        let g = gen::path(10);
        let mut p = Partition::from_assignment(&g, 1, 0.03, vec![0; 10]);
        assert_eq!(lp_refine(&g, &mut p, 3, 1), 0);
        assert_eq!(p.edge_cut_on(&g), 0);
    }

    #[test]
    fn works_on_compressed_graphs() {
        let csr = gen::grid2d(12, 12);
        let compressed =
            graph::CompressedGraph::from_csr(&csr, &graph::CompressionConfig::default());
        let assignment: Vec<BlockId> = (0..csr.n() as u32).map(|u| u % 2).collect();
        let mut p_csr = Partition::from_assignment(&csr, 2, 0.1, assignment.clone());
        let mut p_comp = Partition::from_assignment(&compressed, 2, 0.1, assignment);
        lp_refine(&csr, &mut p_csr, 3, 9);
        lp_refine(&compressed, &mut p_comp, 3, 9);
        // Both representations should allow substantial improvement over the stripes.
        assert!(p_csr.edge_cut_on(&csr) < 100);
        assert!(p_comp.edge_cut_on(&compressed) < 100);
    }
}
