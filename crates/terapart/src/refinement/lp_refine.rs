//! Size-constrained label propagation refinement (paper §II-B).
//!
//! This is KaMinPar's default refinement algorithm and the refinement used by
//! TeraPart-LP. Starting from the projected partition, vertices are visited in parallel
//! and moved to the adjacent block with the strongest connection, provided the move
//! strictly improves the connection weight and the target block stays within the balance
//! constraint. Its auxiliary memory is proportional to `k` (per-thread block-rating
//! maps), which the paper notes is negligible compared to the clustering stage.
//!
//! Rounds after the first are frontier-driven: a vertex is revisited if it was adjacent
//! to a move of the previous round (its affinities changed), if its move lost a race, or
//! if its balance-blocked move became feasible — feasibility depends on global block
//! weights, so a vertex whose best improving block was full is kept as a waiter (with
//! its weight and target) across rounds and reactivated in whichever round the move
//! first fits again. On a converging instance the active set shrinks every round and
//! the refinement cost drops from `O(rounds · m)` to `O(m + moved-region work)`.
//! The round loop (collect/shuffle/run/swap plus stop criteria) is the shared driver of
//! `crate::lp_rounds`, instantiated here with the balance-waiter semantics.

use std::sync::atomic::{AtomicU32, AtomicU64, AtomicUsize, Ordering};
use std::sync::Arc;

use graph::traits::Graph;
use graph::{NodeId, NodeWeight};
use memtrack::MemoryScope;
use rayon::prelude::*;

use crate::coarsening::rating_map::FixedCapacityHashMap;
use crate::lp_rounds::{drive_lp_rounds, LpRoundSemantics};
use crate::partition::{BlockId, Partition};
use crate::scratch::{AtomicBitset, HierarchyScratch, WorkerScratchPool};

/// Shared atomic view of a partition used by the parallel refinement algorithms.
pub(crate) struct AtomicPartition {
    pub assignment: Vec<AtomicU32>,
    pub block_weights: Vec<AtomicU64>,
    pub max_block_weight: NodeWeight,
    pub k: usize,
}

impl AtomicPartition {
    pub fn from_partition(partition: &Partition) -> Self {
        Self {
            assignment: partition
                .assignment()
                .iter()
                .map(|&b| AtomicU32::new(b))
                .collect(),
            block_weights: partition
                .block_weights()
                .iter()
                .map(|&w| AtomicU64::new(w))
                .collect(),
            max_block_weight: partition.max_block_weight(),
            k: partition.k(),
        }
    }

    pub fn block(&self, u: NodeId) -> BlockId {
        self.assignment[u as usize].load(Ordering::Relaxed)
    }

    /// Attempts to move `u` to `target`, enforcing the balance constraint on the target
    /// block with a CAS loop. Returns `true` on success.
    pub fn try_move(&self, u: NodeId, node_weight: NodeWeight, target: BlockId) -> bool {
        let source = self.block(u);
        if source == target {
            return false;
        }
        let target_weight = &self.block_weights[target as usize];
        let mut observed = target_weight.load(Ordering::Relaxed);
        loop {
            if observed + node_weight > self.max_block_weight {
                return false;
            }
            match target_weight.compare_exchange_weak(
                observed,
                observed + node_weight,
                Ordering::Relaxed,
                Ordering::Relaxed,
            ) {
                Ok(_) => break,
                Err(actual) => observed = actual,
            }
        }
        self.block_weights[source as usize].fetch_sub(node_weight, Ordering::Relaxed);
        self.assignment[u as usize].store(target, Ordering::Relaxed);
        true
    }

    /// Writes the atomic state back into a `Partition`.
    pub fn into_partition(self, graph: &impl Graph, epsilon: f64) -> Partition {
        let assignment: Vec<BlockId> = self
            .assignment
            .into_iter()
            .map(|a| a.into_inner())
            .collect();
        Partition::from_assignment(graph, self.k, epsilon, assignment)
    }
}

/// Statistics of one label propagation refinement invocation.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct LpRefineStats {
    /// Total vertex moves performed.
    pub moves: usize,
    /// Rounds actually executed (may be fewer than requested on convergence).
    pub rounds: usize,
    /// Number of vertices visited in each executed round. With the frontier enabled,
    /// entry 0 is the full vertex count and later entries are the active-set sizes.
    pub visited_per_round: Vec<usize>,
}

/// Runs `rounds` rounds of size-constrained label propagation refinement on `partition`
/// with freshly allocated scratch memory and the classic full-sweep rounds. Returns the
/// number of vertex moves performed.
///
/// This wrapper keeps the original algorithm's semantics — the single-level baselines
/// model sweep-based systems through it. The multilevel pipeline opts into
/// frontier-driven rounds via `RefinementConfig::lp_frontier` and
/// [`lp_refine_with_scratch`].
pub fn lp_refine(graph: &impl Graph, partition: &mut Partition, rounds: usize, seed: u64) -> usize {
    let mut scratch = HierarchyScratch::new();
    lp_refine_with_scratch(graph, partition, rounds, seed, false, &mut scratch).moves
}

/// Runs label propagation refinement, reusing the visit-order buffer and frontier
/// bitsets of `scratch`. With `use_frontier`, rounds after the first visit only the
/// vertices whose neighbourhood changed in the previous round; otherwise every round
/// sweeps all vertices (the original behaviour).
pub fn lp_refine_with_scratch(
    graph: &impl Graph,
    partition: &mut Partition,
    rounds: usize,
    seed: u64,
    use_frontier: bool,
    scratch: &mut HierarchyScratch,
) -> LpRefineStats {
    let n = graph.n();
    if n == 0 || partition.k() <= 1 {
        return LpRefineStats::default();
    }
    let epsilon = partition.epsilon();
    let state = AtomicPartition::from_partition(partition);
    let k = state.k;
    // Account the per-worker rating maps (one per thread, reused via the arena's worker
    // pool) for the duration of the refinement, mirroring the clustering stage's
    // accounting.
    let table_limit = k.min(1 + graph.max_degree());
    let _ratings_scope = MemoryScope::charge_global(
        rayon::current_num_threads().max(1) * FixedCapacityHashMap::new(table_limit).memory_bytes(),
    );

    /// Refinement semantics for the shared driver: historical `seed ^ (round << 17)`
    /// shuffle seeds, balance-blocked movers carried across rounds as waiters, and a
    /// stop only on a move-free round whose next active set is empty.
    struct RefinementRounds<'a, G: Graph> {
        graph: &'a G,
        state: &'a AtomicPartition,
        k: usize,
        seed: u64,
        /// Vertices whose best improving move was rejected by the balance constraint,
        /// carried across rounds: `(vertex, blocked target block, vertex weight)`.
        waiters: Vec<(NodeId, BlockId, NodeWeight)>,
        /// Waiters registered by the round just run, consumed by `after_round`.
        newly_blocked: Vec<(NodeId, BlockId, NodeWeight)>,
        /// Handle to the arena's per-worker buffer pool, cloned out before the driver
        /// takes `&mut` of the whole arena.
        workers: Arc<WorkerScratchPool>,
    }

    impl<G: Graph> LpRoundSemantics for RefinementRounds<'_, G> {
        fn round_seed(&self, round: usize) -> u64 {
            self.seed ^ (round as u64) << 17
        }

        fn obs_counters(&self) -> (obs::Counter, obs::Counter) {
            (obs::Counter::LpRefineRounds, obs::Counter::LpRefineMoves)
        }

        fn run_round(&mut self, order: &[NodeId], frontier: Option<&AtomicBitset>) -> usize {
            let (moves, newly_blocked) = run_round(
                self.graph,
                self.state,
                self.k,
                order,
                frontier,
                &self.workers,
            );
            self.newly_blocked = newly_blocked;
            moves
        }

        fn prefetch_round(&mut self, order: &[NodeId]) {
            // Readahead hint for paged graphs (no-op in memory): the round will decode
            // exactly these neighbourhoods, in this order.
            self.graph.prefetch(order);
        }

        fn has_pending_waiters(&self) -> bool {
            !self.waiters.is_empty()
        }

        fn after_round(&mut self, next_active: &AtomicBitset) {
            // Feasibility depends on global block weights, not the neighbourhood: a
            // waiter is reactivated in whichever round its recorded move first fits
            // again (and then leaves the list — if still unlucky, the revisit
            // re-registers it).
            let mut newly_blocked = std::mem::take(&mut self.newly_blocked);
            self.waiters.append(&mut newly_blocked);
            let state = self.state;
            self.waiters.retain(|&(u, block, weight)| {
                let fits = state.block_weights[block as usize].load(Ordering::Relaxed) + weight
                    <= state.max_block_weight;
                if fits {
                    next_active.set(u as usize);
                }
                !fits
            });
        }

        fn should_stop(
            &mut self,
            moved: usize,
            next_round_has_work: &mut dyn FnMut() -> bool,
        ) -> bool {
            // Stop on a move-free round — unless a reactivated waiter is queued for
            // the next round (frontier mode only; the sweep keeps the original
            // criterion).
            moved == 0 && !next_round_has_work()
        }
    }

    let mut semantics = RefinementRounds {
        graph,
        state: &state,
        k,
        seed,
        waiters: Vec::new(),
        newly_blocked: Vec::new(),
        workers: Arc::clone(&scratch.workers),
    };
    let driven = drive_lp_rounds(n, rounds, use_frontier, scratch, &mut semantics);
    let stats = LpRefineStats {
        moves: driven.moves,
        rounds: driven.rounds,
        visited_per_round: driven.visited_per_round,
    };
    *partition = state.into_partition(graph, epsilon);
    let cut = partition.edge_cut_on(graph);
    partition.set_cached_cut(cut);
    stats
}

/// One parallel round over `order`; returns the number of moves and, when the frontier
/// is active, the balance-blocked waiters: `(vertex, blocked target block, weight)` of
/// every vertex whose improving move was rejected only because the target block was
/// full. Only the highest-affinity blocked block is recorded per vertex — tracking all
/// of them would grow the list without changing behaviour materially, since a revisit
/// recomputes the full candidate set anyway.
fn run_round(
    graph: &impl Graph,
    state: &AtomicPartition,
    k: usize,
    order: &[NodeId],
    frontier: Option<&AtomicBitset>,
    workers: &WorkerScratchPool,
) -> (usize, Vec<(NodeId, BlockId, NodeWeight)>) {
    let moves = AtomicUsize::new(0);
    let table_limit = k.min(1 + graph.max_degree());
    let waiters: Vec<(NodeId, BlockId, NodeWeight)> = order
        .par_chunks(256)
        .map(|chunk| {
            // Reuse a pooled worker's rating map across chunks (and across calls); the
            // lease returns it to the arena's pool when the chunk is done.
            let mut worker = workers.checkout();
            let needs_new = match &worker.ratings {
                Some(table) => table.limit() != table_limit,
                None => true,
            };
            if needs_new {
                worker.ratings = Some(FixedCapacityHashMap::new(table_limit));
            }
            let Some(ratings) = worker.ratings.as_mut() else {
                unreachable!()
            };
            ratings.clear();
            let mut blocked = Vec::new();
            for &u in chunk {
                let current = state.block(u);
                ratings.clear();
                let mut has_external = false;
                graph.for_each_neighbor(u, &mut |v, w| {
                    let block = state.block(v);
                    // The rating table is keyed by NodeId; block ids (< k) always fit.
                    ratings.add(NodeId::from(block), w);
                    has_external |= block != current;
                });
                if !has_external {
                    continue;
                }
                let node_weight = graph.node_weight(u);
                let current_affinity = ratings.get(NodeId::from(current));
                // Choose the feasible block with the highest affinity; move only on a
                // strict improvement to avoid oscillation.
                let mut best: Option<(BlockId, u64)> = None;
                let mut blocked_best: Option<(BlockId, u64)> = None;
                for (block, affinity) in ratings.iter() {
                    // Narrowing back from the NodeId-keyed table is lossless: only
                    // block ids below k were inserted.
                    let block = block as BlockId;
                    if block == current || affinity <= current_affinity {
                        continue;
                    }
                    let feasible = state.block_weights[block as usize].load(Ordering::Relaxed)
                        + node_weight
                        <= state.max_block_weight;
                    let slot = if feasible {
                        &mut best
                    } else {
                        &mut blocked_best
                    };
                    *slot = match *slot {
                        None => Some((block, affinity)),
                        Some((_, bw)) if affinity > bw => Some((block, affinity)),
                        other => other,
                    };
                }
                match best {
                    Some((target, _)) => {
                        if state.try_move(u, node_weight, target) {
                            moves.fetch_add(1, Ordering::Relaxed);
                            if let Some(bits) = frontier {
                                bits.set(u as usize);
                                graph.for_each_neighbor(u, &mut |v, _| bits.set(v as usize));
                            }
                        } else if let Some(bits) = frontier {
                            // The move raced against a concurrent one filling the
                            // target: keep u active so the next round retries it.
                            bits.set(u as usize);
                        }
                    }
                    None => {
                        // An improving move may exist behind the balance constraint;
                        // record the waiter so the caller reactivates u if that block
                        // frees capacity (feasibility is global, not neighbourhood-local).
                        if frontier.is_some() {
                            if let Some((block, _)) = blocked_best {
                                blocked.push((u, block, node_weight));
                            }
                        }
                    }
                }
            }
            blocked
        })
        .reduce(Vec::new, |mut a, mut b| {
            a.append(&mut b);
            a
        });
    (moves.load(Ordering::Relaxed), waiters)
}

#[cfg(test)]
mod tests {
    use super::*;
    use graph::gen;

    #[test]
    fn refinement_never_worsens_the_cut() {
        let g = gen::grid2d(16, 16);
        // A poor (pseudo-random but balanced) initial partition.
        let assignment: Vec<BlockId> = (0..g.n() as u32)
            .map(|u| (u.wrapping_mul(2_654_435_761) >> 8) % 4)
            .collect();
        let mut p = Partition::from_assignment(&g, 4, 0.1, assignment);
        let before = p.edge_cut_on(&g);
        let moves = lp_refine(&g, &mut p, 5, 1);
        let after = p.edge_cut_on(&g);
        assert!(moves > 0, "expected some improving moves");
        assert!(
            after < before,
            "cut did not improve: {} -> {}",
            before,
            after
        );
        assert!(p.is_balanced() || p.imbalance() <= 0.1 + 1e-9);
    }

    #[test]
    fn balance_constraint_is_never_violated_by_moves() {
        let g = gen::complete(20);
        let assignment: Vec<BlockId> = (0..20u32).map(|u| u % 4).collect();
        let mut p = Partition::from_assignment(&g, 4, 0.0, assignment);
        let max = p.max_block_weight();
        lp_refine(&g, &mut p, 5, 3);
        assert!(p.block_weights().iter().all(|&w| w <= max));
        assert_eq!(p.block_weights().iter().sum::<NodeWeight>(), 20);
    }

    #[test]
    fn perfect_partition_stays_untouched() {
        // Two cliques, perfectly split: no move can improve the single-bridge cut.
        let g = gen::clique_chain(2, 8);
        let assignment: Vec<BlockId> = (0..16u32).map(|u| if u < 8 { 0 } else { 1 }).collect();
        let mut p = Partition::from_assignment(&g, 2, 0.03, assignment.clone());
        lp_refine(&g, &mut p, 3, 5);
        assert_eq!(p.edge_cut_on(&g), 1);
        assert_eq!(p.assignment(), assignment.as_slice());
    }

    #[test]
    fn single_block_is_a_noop() {
        let g = gen::path(10);
        let mut p = Partition::from_assignment(&g, 1, 0.03, vec![0; 10]);
        assert_eq!(lp_refine(&g, &mut p, 3, 1), 0);
        assert_eq!(p.edge_cut_on(&g), 0);
    }

    #[test]
    fn works_on_compressed_graphs() {
        let csr = gen::grid2d(12, 12);
        let compressed =
            graph::CompressedGraph::from_csr(&csr, &graph::CompressionConfig::default());
        let assignment: Vec<BlockId> = (0..csr.n() as u32).map(|u| u % 2).collect();
        let mut p_csr = Partition::from_assignment(&csr, 2, 0.1, assignment.clone());
        let mut p_comp = Partition::from_assignment(&compressed, 2, 0.1, assignment);
        lp_refine(&csr, &mut p_csr, 3, 9);
        lp_refine(&compressed, &mut p_comp, 3, 9);
        // Both representations should allow substantial improvement over the stripes.
        assert!(p_csr.edge_cut_on(&csr) < 100);
        assert!(p_comp.edge_cut_on(&compressed) < 100);
    }

    /// The acceptance property of the frontier rewrite: after the full first round, no
    /// further full-vertex sweep happens, and on a converging instance the active set
    /// shrinks monotonically.
    #[test]
    fn frontier_never_rescans_converged_regions() {
        // Four vertical stripes on a grid are locally optimal almost everywhere; flip a
        // thin column of vertices into the wrong block. Strict-improvement LP unzips the
        // protrusion from its ends over several rounds, so only that region has work.
        let g = gen::grid2d(32, 32);
        let n = g.n();
        let mut assignment: Vec<BlockId> = (0..n as u32).map(|u| (u % 32) / 8).collect();
        for row in 0..6 {
            assignment[row * 32] = 1; // column 0 belongs to stripe 0
        }
        let mut p = Partition::from_assignment(&g, 4, 0.1, assignment);
        // Single-thread pool for a deterministic move schedule.
        let pool = rayon::ThreadPoolBuilder::new()
            .num_threads(1)
            .build()
            .unwrap();
        let mut scratch = HierarchyScratch::new();
        let stats = pool.install(|| lp_refine_with_scratch(&g, &mut p, 8, 1, true, &mut scratch));
        assert!(
            stats.rounds >= 2,
            "expected several rounds, got {:?}",
            stats
        );
        assert_eq!(
            stats.visited_per_round[0], n,
            "round 0 must sweep all vertices"
        );
        // No full-vertex sweep after the first round: only the perturbed region and the
        // stripe boundaries it touches stay active.
        for (round, &visited) in stats.visited_per_round.iter().enumerate().skip(1) {
            assert!(
                visited < n / 4,
                "round {} visited {} of {} vertices — the converged stripes were rescanned",
                round,
                visited,
                n
            );
        }
        // Monotonically shrinking active set on this converging instance.
        for w in stats.visited_per_round.windows(2) {
            assert!(
                w[1] <= w[0],
                "active set grew: {:?}",
                stats.visited_per_round
            );
        }
        assert!(p.is_balanced() || p.imbalance() <= 0.1 + 1e-9);
    }

    #[test]
    fn frontier_matches_full_sweep_quality() {
        let g = gen::rgg2d(2000, 10, 4);
        let assignment: Vec<BlockId> = (0..g.n() as u32)
            .map(|u| (u.wrapping_mul(2_654_435_761) >> 8) % 8)
            .collect();
        let mut p_frontier = Partition::from_assignment(&g, 8, 0.1, assignment.clone());
        let mut p_sweep = Partition::from_assignment(&g, 8, 0.1, assignment);
        let mut scratch = HierarchyScratch::new();
        lp_refine_with_scratch(&g, &mut p_frontier, 5, 7, true, &mut scratch);
        lp_refine_with_scratch(&g, &mut p_sweep, 5, 7, false, &mut scratch);
        let frontier_cut = p_frontier.edge_cut_on(&g) as f64;
        let sweep_cut = p_sweep.edge_cut_on(&g) as f64;
        assert!(
            frontier_cut <= sweep_cut * 1.25 + 16.0,
            "frontier refinement much worse than full sweep: {} vs {}",
            frontier_cut,
            sweep_cut
        );
    }
}
