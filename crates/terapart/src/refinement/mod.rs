//! The refinement stage of the multilevel framework (uncoarsening).
//!
//! After the partition of a coarse graph is projected to the next finer graph, it is
//! improved by local search: size-constrained label propagation refinement
//! ([`mod@lp_refine`]) always runs; depending on [`RefinementAlgorithm`] it is
//! followed by the batched positive-gain parallel FM of the paper ([`fm`]) or by
//! priority-queue hill-climbing k-way FM ([`kway_fm`], the `default`/`strong`
//! presets) — both on the §V gain caches ([`gain_table`]). A greedy
//! [`fn@rebalance`] pass repairs any residual balance violations.

pub mod fm;
pub mod gain_table;
pub mod kway_fm;
pub mod lp_refine;
pub mod rebalance;

pub use fm::{fm_refine, fm_refine_with_candidates, FmStats};
pub use gain_table::GainCache;
pub use kway_fm::kway_fm_refine;
pub use lp_refine::{lp_refine, lp_refine_with_scratch, LpRefineStats};
pub use rebalance::rebalance;

use graph::traits::Graph;

use crate::context::{RefinementAlgorithm, RefinementConfig};
use crate::partition::Partition;
use crate::scratch::HierarchyScratch;

/// Statistics of one refinement invocation (one level of uncoarsening).
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct RefinementStats {
    /// Vertex moves performed by label propagation refinement.
    pub lp_moves: usize,
    /// Vertex moves performed by FM refinement.
    pub fm_moves: usize,
    /// Vertex moves performed by the rebalancer.
    pub rebalance_moves: usize,
    /// Heap bytes used by the FM gain table (0 when FM refinement is disabled).
    pub gain_table_bytes: usize,
}

/// Refines `partition` on `graph` according to `config` with freshly allocated scratch
/// memory. Prefer [`refine_with_scratch`] inside the multilevel pipeline.
pub fn refine(
    graph: &impl Graph,
    partition: &mut Partition,
    config: &RefinementConfig,
    seed: u64,
) -> RefinementStats {
    let mut scratch = HierarchyScratch::new();
    refine_with_scratch(graph, partition, config, seed, &mut scratch)
}

/// Refines `partition` on `graph` according to `config`, reusing `scratch` buffers.
/// Returns per-algorithm move counts and the gain-table footprint.
pub fn refine_with_scratch(
    graph: &impl Graph,
    partition: &mut Partition,
    config: &RefinementConfig,
    seed: u64,
    scratch: &mut HierarchyScratch,
) -> RefinementStats {
    let obs = scratch.obs.clone();
    let lp_stats = lp_refine_with_scratch(
        graph,
        partition,
        config.lp_rounds,
        seed,
        config.lp_frontier,
        scratch,
    );
    let mut stats = RefinementStats {
        lp_moves: lp_stats.moves,
        ..Default::default()
    };
    match config.algorithm {
        RefinementAlgorithm::LabelPropagation => {}
        RefinementAlgorithm::FmWithLabelPropagation => {
            let fm_stats = fm::fm_refine_obs(
                graph,
                partition,
                config.gain_table,
                config.fm_passes,
                config.fm_fraction,
                &mut scratch.fm_candidates,
                &obs,
            );
            stats.fm_moves = fm_stats.moves;
            stats.gain_table_bytes = fm_stats.gain_table_bytes;
        }
        RefinementAlgorithm::KWayFmWithLabelPropagation => {
            let fm_stats = kway_fm::kway_fm_refine_obs(
                graph,
                partition,
                config.gain_table,
                config.fm_passes,
                config.fm_adverse_limit,
                &obs,
            );
            stats.fm_moves = fm_stats.moves;
            stats.gain_table_bytes = fm_stats.gain_table_bytes;
        }
    }
    if !partition.is_balanced() {
        stats.rebalance_moves = rebalance(graph, partition);
        obs.add(obs::Counter::RebalanceMoves, stats.rebalance_moves as u64);
    }
    stats
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::context::GainTableKind;
    use crate::partition::BlockId;
    use graph::gen;

    fn scrambled(graph: &impl Graph, k: usize) -> Partition {
        let assignment: Vec<BlockId> = (0..graph.n() as u32)
            .map(|u| (u.wrapping_mul(2_654_435_761) >> 8) % k as u32)
            .collect();
        Partition::from_assignment(graph, k, 0.1, assignment)
    }

    #[test]
    fn lp_only_configuration_runs_no_fm() {
        let g = gen::grid2d(12, 12);
        let mut p = scrambled(&g, 4);
        let config = RefinementConfig {
            algorithm: RefinementAlgorithm::LabelPropagation,
            ..Default::default()
        };
        let stats = refine(&g, &mut p, &config, 1);
        assert!(stats.lp_moves > 0);
        assert_eq!(stats.fm_moves, 0);
        assert_eq!(stats.gain_table_bytes, 0);
        assert!(p.is_balanced());
    }

    #[test]
    fn fm_configuration_improves_over_lp_alone() {
        let g = gen::rgg2d(600, 10, 7);
        let config_lp = RefinementConfig {
            algorithm: RefinementAlgorithm::LabelPropagation,
            ..Default::default()
        };
        let config_fm = RefinementConfig {
            algorithm: RefinementAlgorithm::FmWithLabelPropagation,
            gain_table: GainTableKind::Sparse,
            ..Default::default()
        };
        let mut p_lp = scrambled(&g, 4);
        let mut p_fm = scrambled(&g, 4);
        refine(&g, &mut p_lp, &config_lp, 3);
        let stats = refine(&g, &mut p_fm, &config_fm, 3);
        assert!(stats.gain_table_bytes > 0);
        assert!(
            p_fm.edge_cut_on(&g) <= p_lp.edge_cut_on(&g),
            "FM should not be worse than LP alone: {} vs {}",
            p_fm.edge_cut_on(&g),
            p_lp.edge_cut_on(&g)
        );
    }

    #[test]
    fn refinement_repairs_imbalance() {
        let g = gen::grid2d(10, 10);
        let assignment: Vec<BlockId> = (0..100u32).map(|u| if u < 80 { 0 } else { 1 }).collect();
        let mut p = Partition::from_assignment(&g, 2, 0.05, assignment);
        assert!(!p.is_balanced());
        let stats = refine(&g, &mut p, &RefinementConfig::default(), 2);
        assert!(p.is_balanced(), "imbalance {} remains", p.imbalance());
        assert!(stats.lp_moves + stats.rebalance_moves > 0);
    }
}
