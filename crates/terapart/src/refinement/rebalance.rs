//! Greedy rebalancing of overloaded blocks.
//!
//! The distributed version of KaMinPar repairs balance violations in a dedicated
//! rebalancing step (paper §II-B); the shared-memory partitioner uses the same routine as
//! a safety net after projection, since a coarse-level partition that was balanced with
//! respect to coarse vertex weights can exceed the fine-level constraint slightly.
//!
//! Vertices are moved out of overloaded blocks in order of increasing *loss* (the cut
//! increase caused by the move) into the lightest feasible block, until every block
//! respects the constraint or no further move is possible.

use graph::traits::Graph;
use graph::{EdgeWeight, NodeId};

use crate::partition::{BlockId, Partition};

/// Rebalances `partition` in place. Returns the number of vertices moved.
pub fn rebalance(graph: &impl Graph, partition: &mut Partition) -> usize {
    let max_weight = partition.max_block_weight();
    let k = partition.k();
    if k <= 1 {
        return 0;
    }
    let mut moved = 0usize;
    // Iterate until balanced; bounded by n moves overall to guarantee termination.
    let mut budget = graph.n();
    while budget > 0 {
        let (heaviest, weight) = partition.heaviest_block();
        if weight <= max_weight {
            break;
        }
        // Candidate vertices of the heaviest block, ordered by the loss of moving them to
        // their best alternative block.
        let mut best_candidate: Option<(i64, NodeId, BlockId)> = None;
        for u in 0..graph.n() as NodeId {
            if partition.block(u) != heaviest {
                continue;
            }
            let node_weight = graph.node_weight(u);
            // Affinity towards each block.
            let mut internal: EdgeWeight = 0;
            let mut per_block: Vec<(BlockId, EdgeWeight)> = Vec::new();
            graph.for_each_neighbor(u, &mut |v, w| {
                let b = partition.block(v);
                if b == heaviest {
                    internal += w;
                } else if let Some(entry) = per_block.iter_mut().find(|(pb, _)| *pb == b) {
                    entry.1 += w;
                } else {
                    per_block.push((b, w));
                }
            });
            // Consider every other block as a target (vertices without external
            // neighbours can still be moved, at a loss equal to their internal weight).
            for target in 0..k as BlockId {
                if target == heaviest {
                    continue;
                }
                if partition.block_weight(target) + node_weight > max_weight {
                    continue;
                }
                let external = per_block
                    .iter()
                    .find(|(b, _)| *b == target)
                    .map(|&(_, w)| w)
                    .unwrap_or(0);
                let loss = internal as i64 - external as i64;
                let better = match best_candidate {
                    None => true,
                    Some((best_loss, _, _)) => loss < best_loss,
                };
                if better {
                    best_candidate = Some((loss, u, target));
                }
            }
        }
        match best_candidate {
            Some((_, u, target)) => {
                partition.move_vertex(u, target, graph.node_weight(u));
                moved += 1;
                budget -= 1;
            }
            None => break, // no feasible move exists
        }
    }
    if moved > 0 {
        let cut = partition.edge_cut_on(graph);
        partition.set_cached_cut(cut);
    }
    moved
}

#[cfg(test)]
mod tests {
    use super::*;
    use graph::gen;
    use graph::NodeWeight;

    #[test]
    fn rebalances_an_overloaded_block() {
        let g = gen::grid2d(8, 8);
        // Put 3/4 of the vertices into block 0.
        let assignment: Vec<BlockId> = (0..64u32).map(|u| if u < 48 { 0 } else { 1 }).collect();
        let mut p = Partition::from_assignment(&g, 2, 0.03, assignment);
        assert!(!p.is_balanced());
        let moved = rebalance(&g, &mut p);
        assert!(moved > 0);
        assert!(p.is_balanced(), "still imbalanced: {:?}", p.block_weights());
        assert_eq!(p.block_weights().iter().sum::<NodeWeight>(), 64);
    }

    #[test]
    fn balanced_partition_is_untouched() {
        let g = gen::grid2d(4, 4);
        let assignment: Vec<BlockId> = (0..16u32).map(|u| u % 2).collect();
        let mut p = Partition::from_assignment(&g, 2, 0.1, assignment.clone());
        assert!(p.is_balanced());
        assert_eq!(rebalance(&g, &mut p), 0);
        assert_eq!(p.assignment(), assignment.as_slice());
    }

    #[test]
    fn prefers_low_loss_moves() {
        // Two cliques; block 0 holds clique A plus two vertices of clique B. Rebalancing
        // (with a tight constraint) should move the clique-B vertices back, not split
        // clique A.
        let g = gen::clique_chain(2, 6);
        let mut assignment: Vec<BlockId> = (0..12u32).map(|u| if u < 6 { 0 } else { 1 }).collect();
        assignment[6] = 0;
        assignment[7] = 0;
        let mut p = Partition::from_assignment(&g, 2, 0.0, assignment);
        assert!(!p.is_balanced());
        rebalance(&g, &mut p);
        assert!(p.is_balanced());
        // Clique A stays intact in block 0.
        for u in 0..6 {
            assert_eq!(p.block(u), 0);
        }
    }

    #[test]
    fn gives_up_when_no_move_is_feasible() {
        // A single huge vertex cannot be balanced no matter what.
        let base = gen::path(3);
        let g = {
            let mut b = graph::CsrGraphBuilder::with_node_weights(vec![100, 1, 1]);
            use graph::traits::Graph as _;
            for u in 0..base.n() as NodeId {
                base.for_each_neighbor(u, &mut |v, w| {
                    if u < v {
                        b.add_edge(u, v, w);
                    }
                });
            }
            b.build()
        };
        let mut p = Partition::from_assignment(&g, 2, 0.03, vec![0, 1, 1]);
        assert!(!p.is_balanced());
        rebalance(&g, &mut p);
        // The partition is still infeasible but the routine terminated.
        assert!(!p.is_balanced());
    }

    #[test]
    fn single_block_is_a_noop() {
        let g = gen::path(4);
        let mut p = Partition::from_assignment(&g, 1, 0.0, vec![0; 4]);
        assert_eq!(rebalance(&g, &mut p), 0);
    }
}
