//! Reusable hot-path scratch memory for the multilevel pipeline.
//!
//! Every hierarchy level of the seed implementation allocated its auxiliary state from
//! scratch: a fresh `Vec<Vec<NodeId>>` cluster-bucket structure and freshly zeroed atomic
//! output arrays in contraction, a fresh visit-order vector per label-propagation round.
//! Because level sizes shrink geometrically, the *first* level's requirement dominates;
//! a single arena sized for the input graph can serve the whole hierarchy without ever
//! allocating again. [`HierarchyScratch`] is that arena. It is created once per
//! partitioning run, threaded through coarsening (clustering + contraction) and
//! refinement, and reports its footprint to `memtrack` so the memory ladder experiments
//! see it.
//!
//! The arena also owns the [`AtomicBitset`] pair backing the frontier/active-set
//! worklists of label propagation (clustering and refinement): vertices whose
//! neighbourhood changed in the previous round. Converged regions are never rescanned.

use std::fmt;
use std::ops::{Deref, DerefMut};
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;

use graph::ids::INVALID_NODE;
use graph::{AtomicNodeId, EdgeWeight, NodeId};
use memtrack::MemoryScope;
use parking_lot::Mutex;

use crate::coarsening::contract::Batch;
use crate::coarsening::rating_map::FixedCapacityHashMap;
use crate::initial::scratch::InitialPartitioningScratch;
use crate::partition::BlockId;
use crate::ClusterId;

/// A fixed-capacity concurrent bitset with relaxed atomics.
///
/// Used as the label-propagation frontier: `set` is called concurrently by worker
/// threads marking vertices whose neighbourhood changed; collection and clearing happen
/// between rounds, outside the parallel section.
#[derive(Debug, Default)]
pub struct AtomicBitset {
    words: Vec<AtomicU64>,
}

impl AtomicBitset {
    pub fn new() -> Self {
        Self::default()
    }

    /// Grows the bitset to hold at least `bits` bits. Does not shrink.
    pub fn ensure_len(&mut self, bits: usize) {
        let words = bits.div_ceil(64);
        if words > self.words.len() {
            self.words.resize_with(words, || AtomicU64::new(0));
        }
    }

    /// Sets bit `i`. Callable concurrently.
    #[inline]
    pub fn set(&self, i: usize) {
        self.words[i / 64].fetch_or(1 << (i % 64), Ordering::Relaxed);
    }

    /// Tests bit `i`.
    #[inline]
    pub fn get(&self, i: usize) -> bool {
        (self.words[i / 64].load(Ordering::Relaxed) >> (i % 64)) & 1 == 1
    }

    /// Clears the first `bits` bits.
    pub fn clear_range(&self, bits: usize) {
        for word in &self.words[..bits.div_ceil(64).min(self.words.len())] {
            word.store(0, Ordering::Relaxed);
        }
    }

    /// Number of set bits among the first `bits` bits.
    pub fn count(&self, bits: usize) -> usize {
        self.words[..bits.div_ceil(64).min(self.words.len())]
            .iter()
            .map(|w| w.load(Ordering::Relaxed).count_ones() as usize)
            .sum()
    }

    /// Appends the indices of all set bits below `bits` to `out`, in increasing order.
    pub fn collect_into(&self, bits: usize, out: &mut Vec<NodeId>) {
        for (wi, word) in self.words[..bits.div_ceil(64).min(self.words.len())]
            .iter()
            .enumerate()
        {
            let mut w = word.load(Ordering::Relaxed);
            while w != 0 {
                let bit = w.trailing_zeros() as usize;
                let i = wi * 64 + bit;
                if i >= bits {
                    break;
                }
                out.push(i as NodeId);
                w &= w - 1;
            }
        }
    }

    /// Heap bytes held by the bitset.
    pub fn memory_bytes(&self) -> usize {
        self.words.len() * std::mem::size_of::<AtomicU64>()
    }
}

/// Per-worker reusable buffers of the parallel hot loops.
///
/// These were formerly `thread_local!` statics in `coarsening/contract.rs` and
/// `refinement/lp_refine.rs`. Thread-local storage pins the buffers to rayon's worker
/// threads for the *process* lifetime — acceptable for a one-shot CLI, but wrong for a
/// reentrant engine where many concurrent requests share one rayon pool: every request
/// would grow every worker's statics to its own high-water mark and nothing would ever
/// be released. Owned by the arena (via [`HierarchyScratch::workers`]), the buffers
/// are scoped to one request's arena and returned to its pool when a worker finishes a
/// chunk, so co-tenant requests never see (or pay for) each other's buffers.
#[derive(Default)]
pub(crate) struct WorkerScratch {
    /// Packed `(target << 32) | position` sort keys of the contraction neighbourhood
    /// sort (narrow-id fast path).
    pub(crate) sort_keys: Vec<u64>,
    /// `(target, position)` sort pairs — the wide-id fallback of the same sort.
    pub(crate) sort_pairs: Vec<(NodeId, u64)>,
    /// Edge-weight copy backing the permutation gather of the neighbourhood sort.
    pub(crate) sort_wts: Vec<EdgeWeight>,
    /// LP refinement's block-rating table, recreated when the `(k, max_degree)` regime
    /// changes its capacity limit.
    pub(crate) ratings: Option<FixedCapacityHashMap>,
    /// Contraction phase 1 aggregation state: rating table plus the vertex/edge batch
    /// flushed into the shared coarse arrays.
    pub(crate) agg: Option<(FixedCapacityHashMap, Batch)>,
}

/// Pool of [`WorkerScratch`] buffers, one checked out per worker per parallel chunk.
///
/// Lock-held time is a single `Vec` push/pop; checkout frequency is per *chunk* (64–256
/// vertices), not per vertex, so contention is negligible next to the work each chunk
/// does. The pool never holds more buffers than the maximum number of simultaneously
/// active workers that ever served this arena.
#[derive(Default)]
pub(crate) struct WorkerScratchPool {
    // Boxed so checkout/park under the lock move a pointer, not the buffer struct.
    #[allow(clippy::vec_box)]
    parked: Mutex<Vec<Box<WorkerScratch>>>,
}

impl WorkerScratchPool {
    /// Checks out a worker buffer (reusing a parked one if available). The lease
    /// returns the buffer on drop.
    pub(crate) fn checkout(&self) -> WorkerLease<'_> {
        let scratch = self.parked.lock().pop().unwrap_or_default();
        WorkerLease {
            pool: self,
            scratch: Some(scratch),
        }
    }

    /// Number of buffers currently parked (for tests).
    #[cfg(test)]
    pub(crate) fn parked_count(&self) -> usize {
        self.parked.lock().len()
    }
}

impl fmt::Debug for WorkerScratchPool {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("WorkerScratchPool")
            .field("parked", &self.parked.lock().len())
            .finish()
    }
}

/// A checked-out [`WorkerScratch`]; derefs to the buffer and parks it again on drop.
pub(crate) struct WorkerLease<'a> {
    pool: &'a WorkerScratchPool,
    scratch: Option<Box<WorkerScratch>>,
}

impl Deref for WorkerLease<'_> {
    type Target = WorkerScratch;
    fn deref(&self) -> &WorkerScratch {
        self.scratch.as_deref().unwrap_or_else(|| unreachable!())
    }
}

impl DerefMut for WorkerLease<'_> {
    fn deref_mut(&mut self) -> &mut WorkerScratch {
        self.scratch
            .as_deref_mut()
            .unwrap_or_else(|| unreachable!())
    }
}

impl Drop for WorkerLease<'_> {
    fn drop(&mut self) {
        if let Some(scratch) = self.scratch.take() {
            self.pool.parked.lock().push(scratch);
        }
    }
}

/// The reusable per-run scratch arena (see the module docs).
///
/// Buffers only ever grow; within one multilevel run the first (largest) level sizes
/// them and every later level reuses them allocation-free. The arena's footprint is
/// charged to the global memory accounting for its lifetime, so phase reports attribute
/// the auxiliary memory to the level that actually caused the growth.
#[derive(Debug)]
pub struct HierarchyScratch {
    /// Per cluster label: member count during the counting phase, then the write cursor
    /// during the scatter phase of the bucket construction.
    pub(crate) bucket_heads: Vec<AtomicNodeId>,
    /// CSR-style bucket boundaries: members of coarse vertex `b` occupy
    /// `bucket_members[bucket_offsets[b]..bucket_offsets[b + 1]]`.
    pub(crate) bucket_offsets: Vec<NodeId>,
    /// Flat member array, grouped by bucket.
    pub(crate) bucket_members: Vec<NodeId>,
    /// `leaders[b]` is the cluster label contracted into coarse vertex `b`.
    pub(crate) leaders: Vec<ClusterId>,
    /// Old cluster label -> coarse vertex ID.
    pub(crate) remap: Vec<AtomicNodeId>,
    /// Per coarse vertex: neighbourhood start in the edge arrays.
    pub(crate) starts: Vec<AtomicU64>,
    /// Per coarse vertex: aggregated node weight.
    pub(crate) coarse_node_weights: Vec<AtomicU64>,
    /// Over-reserved coarse edge targets (old cluster labels until the final remap).
    pub(crate) edge_targets: Vec<AtomicNodeId>,
    /// Over-reserved coarse edge weights, parallel to `edge_targets`.
    pub(crate) edge_weights: Vec<AtomicU64>,
    /// Visit-order buffer for label propagation rounds.
    pub(crate) order: Vec<NodeId>,
    /// Active set of the current LP round (vertices to visit).
    pub(crate) active: AtomicBitset,
    /// Active set being built for the next LP round.
    pub(crate) next_active: AtomicBitset,
    /// Scratch region of the initial-partitioning stage: the epoch-tagged membership
    /// map plus the pooled bisection/attempt workspaces reused across the whole
    /// recursive-bisection tree (see [`crate::initial::scratch`]).
    pub(crate) initial: InitialPartitioningScratch,
    /// Parallel FM refinement's per-pass candidate buffer `(gain, vertex, target)`,
    /// reused across passes and hierarchy levels.
    pub(crate) fm_candidates: Vec<(i64, NodeId, BlockId)>,
    /// Observability sink of the current run (noop unless the run records). Threaded
    /// through the scratch arena so the phase implementations can open round-level
    /// spans and bump counters without widening every signature.
    pub(crate) obs: obs::ObsHandle,
    /// Pool of per-worker buffers backing the parallel hot loops (see
    /// [`WorkerScratchPool`]). Behind an `Arc` so phase code can clone a handle out
    /// before mutably borrowing the rest of the arena (e.g. across
    /// [`crate::lp_rounds::drive_lp_rounds`]). Not part of [`Self::memory_bytes`]:
    /// like the thread-locals it replaces, the worker buffers are transient hot-loop
    /// state whose committed size the phases charge (estimated) per level.
    pub(crate) workers: Arc<WorkerScratchPool>,
    /// Charge of all node-indexed buffers against the global memory accounting. The
    /// over-reserved edge buffers are *not* part of this charge: following the paper's
    /// virtual-memory overcommit model (as in `memtrack::ReservedVec`), contraction
    /// charges their committed portion transiently per level.
    charge: MemoryScope<'static>,
}

impl Default for HierarchyScratch {
    fn default() -> Self {
        Self::new()
    }
}

impl HierarchyScratch {
    pub fn new() -> Self {
        Self {
            bucket_heads: Vec::new(),
            bucket_offsets: Vec::new(),
            bucket_members: Vec::new(),
            leaders: Vec::new(),
            remap: Vec::new(),
            starts: Vec::new(),
            coarse_node_weights: Vec::new(),
            edge_targets: Vec::new(),
            edge_weights: Vec::new(),
            order: Vec::new(),
            active: AtomicBitset::new(),
            next_active: AtomicBitset::new(),
            initial: InitialPartitioningScratch::default(),
            fm_candidates: Vec::new(),
            obs: obs::ObsHandle::noop(),
            workers: Arc::new(WorkerScratchPool::default()),
            charge: MemoryScope::charge_global(0),
        }
    }

    /// Detaches the run-scoped observability handles, restoring noop sinks. Called when
    /// an engine parks the arena: a pooled arena must not keep the previous request's
    /// recording sink (and its `Arc<Recorder>`) alive between requests.
    pub(crate) fn reset_obs(&mut self) {
        self.obs = obs::ObsHandle::noop();
        self.initial.obs = obs::ObsHandle::noop();
    }

    /// Grows the LP worklist buffers (visit order, frontier bitsets) to `n` vertices.
    /// The order buffer's previous contents are discarded (every round rebuilds it).
    pub fn ensure_worklists(&mut self, n: usize) {
        if self.order.capacity() < n {
            // `reserve` is relative to the current length; clear first so the resulting
            // capacity is at least `n` regardless of what the buffer still holds.
            self.order.clear();
            self.order.reserve(n);
        }
        self.active.ensure_len(n);
        self.next_active.ensure_len(n);
        self.recharge();
    }

    /// Grows the cluster-bucket buffers (counting-sort layout + label remap) to `n`.
    pub fn ensure_buckets(&mut self, n: usize) {
        if self.bucket_heads.len() < n {
            self.bucket_heads.resize_with(n, || AtomicNodeId::new(0));
            self.remap
                .resize_with(n, || AtomicNodeId::new(INVALID_NODE));
        }
        if self.bucket_offsets.len() < n + 1 {
            self.bucket_offsets.resize(n + 1, 0);
            self.bucket_members.resize(n, 0);
            self.leaders.resize(n, 0);
        }
        self.recharge();
    }

    /// Grows the one-pass contraction's per-coarse-vertex buffers to `n`.
    pub fn ensure_contraction(&mut self, n: usize) {
        if self.starts.len() < n {
            self.starts.resize_with(n, || AtomicU64::new(0));
            self.coarse_node_weights
                .resize_with(n, || AtomicU64::new(0));
        }
        self.recharge();
    }

    /// Grows the edge buffers to hold `half_edges` entries (no-op once sized). The
    /// reservation is not charged to the accounting — only the committed portion is,
    /// transiently, by the contraction that writes it (the overcommit model).
    pub fn ensure_edges(&mut self, half_edges: usize) {
        if self.edge_targets.len() < half_edges {
            self.edge_targets
                .resize_with(half_edges, || AtomicNodeId::new(0));
            self.edge_weights
                .resize_with(half_edges, || AtomicU64::new(0));
        }
    }

    /// Frees the over-reserved edge buffers. Called when coarsening ends: contraction is
    /// their only user, and unlike true virtual-memory overcommit the buffers are
    /// physically backed (zero-initialised), so holding them through initial
    /// partitioning and refinement would silently inflate the real resident footprint
    /// relative to what the accounting reports. Cross-level reuse is unaffected — the
    /// release happens after the last level.
    pub fn release_edges(&mut self) {
        self.edge_targets = Vec::new();
        self.edge_weights = Vec::new();
    }

    /// Swaps the current and next active sets between LP rounds.
    pub(crate) fn swap_active(&mut self) {
        std::mem::swap(&mut self.active, &mut self.next_active);
    }

    /// Bytes the arena charges to the memory accounting: all node-indexed buffers. The
    /// over-reserved edge buffers are excluded (charged transiently at their committed
    /// size by the contraction that writes them).
    pub fn memory_bytes(&self) -> usize {
        let id = std::mem::size_of::<NodeId>();
        self.bucket_heads.len() * id
            + self.bucket_offsets.len() * id
            + self.bucket_members.len() * id
            + self.leaders.len() * id
            + self.remap.len() * id
            + self.starts.len() * 8
            + self.coarse_node_weights.len() * 8
            + self.order.capacity() * std::mem::size_of::<NodeId>()
            + self.active.memory_bytes()
            + self.next_active.memory_bytes()
            + self.initial.memory_bytes()
            + self.fm_candidates.capacity() * std::mem::size_of::<(i64, NodeId, BlockId)>()
    }

    /// Brings the memtrack charge in line with the current footprint.
    pub(crate) fn recharge(&mut self) {
        let bytes = self.memory_bytes();
        let charged = self.charge.bytes();
        if bytes > charged {
            self.charge.grow(bytes - charged);
        }
    }
}

/// A raw mutable slice shareable across the workers of one parallel loop.
///
/// # Safety contract
/// Callers must guarantee that concurrent writes target disjoint indices (e.g. positions
/// handed out by an atomic cursor, or per-vertex CSR segments, which never overlap).
pub(crate) struct SharedSlice<'a, T> {
    ptr: *mut T,
    len: usize,
    _marker: std::marker::PhantomData<&'a mut [T]>,
}

unsafe impl<T: Send> Send for SharedSlice<'_, T> {}
unsafe impl<T: Send> Sync for SharedSlice<'_, T> {}

impl<'a, T> SharedSlice<'a, T> {
    pub fn new(slice: &'a mut [T]) -> Self {
        Self {
            ptr: slice.as_mut_ptr(),
            len: slice.len(),
            _marker: std::marker::PhantomData,
        }
    }

    /// Writes `value` to index `i`.
    ///
    /// # Safety
    /// `i` must be in bounds and not written concurrently by another worker.
    #[inline]
    pub unsafe fn write(&self, i: usize, value: T) {
        debug_assert!(i < self.len);
        unsafe { self.ptr.add(i).write(value) };
    }

    /// Reborrows the subrange `[start, end)` as a mutable slice.
    ///
    /// # Safety
    /// The range must be in bounds and disjoint from every range accessed concurrently
    /// (which also justifies handing out `&mut` through `&self`: disjointness makes the
    /// aliasing impossible that the lint guards against).
    #[inline]
    #[allow(clippy::mut_from_ref)]
    pub unsafe fn slice_mut(&self, start: usize, end: usize) -> &mut [T] {
        debug_assert!(start <= end && end <= self.len);
        unsafe { std::slice::from_raw_parts_mut(self.ptr.add(start), end - start) }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bitset_set_get_collect() {
        let mut bs = AtomicBitset::new();
        bs.ensure_len(200);
        bs.set(0);
        bs.set(63);
        bs.set(64);
        bs.set(199);
        assert!(bs.get(63) && bs.get(64) && !bs.get(65));
        assert_eq!(bs.count(200), 4);
        let mut out = Vec::new();
        bs.collect_into(200, &mut out);
        assert_eq!(out, vec![0, 63, 64, 199]);
        bs.clear_range(200);
        assert_eq!(bs.count(200), 0);
    }

    #[test]
    fn bitset_collect_respects_bit_limit() {
        let mut bs = AtomicBitset::new();
        bs.ensure_len(128);
        bs.set(10);
        bs.set(100);
        let mut out = Vec::new();
        bs.collect_into(64, &mut out);
        assert_eq!(out, vec![10]);
    }

    #[test]
    fn scratch_grows_monotonically_and_charges_memtrack() {
        let mut scratch = HierarchyScratch::new();
        assert_eq!(scratch.memory_bytes(), 0);
        scratch.ensure_worklists(10_000);
        scratch.ensure_buckets(10_000);
        scratch.ensure_contraction(10_000);
        scratch.ensure_edges(50_000);
        let after_first = scratch.memory_bytes();
        assert!(after_first > 0);
        // Smaller levels reuse the buffers: no growth.
        scratch.ensure_worklists(1_000);
        scratch.ensure_buckets(1_000);
        scratch.ensure_contraction(1_000);
        scratch.ensure_edges(5_000);
        assert_eq!(scratch.memory_bytes(), after_first);
        // Larger requests grow.
        scratch.ensure_buckets(20_000);
        assert!(scratch.memory_bytes() > after_first);
    }

    #[test]
    fn scratch_charge_is_released_on_drop() {
        let before = memtrack::global().current();
        {
            let mut scratch = HierarchyScratch::new();
            scratch.ensure_buckets(4_096);
            scratch.ensure_worklists(4_096);
            assert!(memtrack::global().current() >= before + scratch.memory_bytes());
        }
        assert!(memtrack::global().current() <= before + 64);
    }

    #[test]
    fn worker_pool_checkout_parks_and_reuses_buffers() {
        let pool = WorkerScratchPool::default();
        {
            let mut a = pool.checkout();
            a.sort_keys.reserve(128);
            let _b = pool.checkout();
            assert_eq!(pool.parked_count(), 0, "leases are live, nothing parked");
        }
        assert_eq!(pool.parked_count(), 2, "dropped leases park their buffers");
        let c = pool.checkout();
        let d = pool.checkout();
        assert_eq!(pool.parked_count(), 0);
        assert!(
            c.sort_keys.capacity() + d.sort_keys.capacity() >= 128,
            "a reused buffer keeps its grown capacity"
        );
    }

    #[test]
    fn shared_slice_writes_land() {
        let mut data = vec![0u32; 8];
        {
            let shared = SharedSlice::new(&mut data);
            unsafe {
                shared.write(3, 7);
                let sub = shared.slice_mut(5, 8);
                sub[0] = 9;
            }
        }
        assert_eq!(data[3], 7);
        assert_eq!(data[5], 9);
    }
}
