//! Determinism of priority-queue k-way FM refinement across execution environments.
//!
//! The refinement seeds its move queue in parallel but applies moves strictly
//! sequentially from a totally ordered heap, so a fixed seed must produce a
//! **bit-identical** assignment (a) at any thread count and (b) from any graph
//! representation that iterates neighbourhoods in the same order — in particular the
//! on-disk [`PagedGraph`] against the in-memory CSR it was written from. These are
//! the contracts the golden-cut table and the on-disk pipeline rely on.

use graph::csr::CsrGraph;
use graph::gen;
use graph::store::{write_tpg_from_graph, PagedGraph};
use graph::traits::Graph;
use graph::CompressionConfig;
use terapart::refinement::kway_fm_refine;
use terapart::{GainTableKind, Partition};

/// A deliberately tangled but balanced starting partition: round-robin blocks with a
/// deterministic pseudo-random swirl, so FM has real work to do.
fn scrambled(graph: &impl Graph, k: usize, epsilon: f64) -> Partition {
    let assignment = (0..graph.n())
        .map(|u| {
            let h = (u as u64)
                .wrapping_mul(0x9e37_79b9_7f4a_7c15)
                .rotate_left(17);
            ((h as usize ^ u) % k) as terapart::BlockId
        })
        .collect();
    Partition::from_assignment(graph, k, epsilon, assignment)
}

fn refined_assignment(
    graph: &impl Graph,
    k: usize,
    threads: usize,
) -> (Vec<terapart::BlockId>, u64) {
    let pool = rayon::ThreadPoolBuilder::new()
        .num_threads(threads)
        .build()
        .unwrap();
    let mut p = scrambled(graph, k, 0.1);
    pool.install(|| kway_fm_refine(graph, &mut p, GainTableKind::Sparse, 4, 96));
    let cut = p.edge_cut();
    (p.assignment().to_vec(), cut)
}

#[test]
fn kway_fm_is_bit_identical_across_thread_counts() {
    let g = gen::rgg2d(1_200, 10, 21);
    let (reference, reference_cut) = refined_assignment(&g, 8, 1);
    assert!(reference_cut < scrambled(&g, 8, 0.1).edge_cut_on(&g));
    for threads in [2, 4, 8] {
        let (assignment, cut) = refined_assignment(&g, 8, threads);
        assert_eq!(cut, reference_cut, "{} threads changed the cut", threads);
        assert_eq!(
            assignment, reference,
            "{} threads changed the assignment",
            threads
        );
    }
}

#[test]
fn kway_fm_is_bit_identical_on_disk_and_in_memory() {
    let csr: CsrGraph = gen::weblike(11, 8, 5);
    let dir = std::env::temp_dir().join(format!("terapart_kwayfm_det_{}", std::process::id()));
    std::fs::create_dir_all(&dir).unwrap();
    let path = dir.join("det.tpg");
    write_tpg_from_graph(&csr, &path, &CompressionConfig::default()).unwrap();
    let paged = PagedGraph::open(&path).unwrap();

    let (in_memory, cut_mem) = refined_assignment(&csr, 6, 4);
    let (on_disk, cut_disk) = refined_assignment(&paged, 6, 4);
    assert_eq!(cut_mem, cut_disk, "representations disagree on the cut");
    assert_eq!(
        in_memory, on_disk,
        "paged refinement diverged from the in-memory run"
    );
    drop(paged);
    std::fs::remove_dir_all(&dir).ok();
}
