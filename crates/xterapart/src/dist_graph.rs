//! Distributed graph: edge-balanced sharding with ghost vertices (paper §II-B).
//!
//! The input graph is split into `p` shards of consecutive vertices with roughly equal
//! numbers of edges. Each shard stores the neighbourhoods of its *owned* vertices;
//! endpoints owned by other PEs are *ghost vertices* — they are known by global ID and
//! their labels/blocks are replicated and refreshed through message exchange, but their
//! neighbourhoods are not stored. Shards can hold their adjacency either uncompressed
//! (DKaMinPar) or gap/VarInt-compressed (XTeraPart); the per-PE memory footprint of the
//! two options is what Figure 8 compares.

use graph::csr::CsrGraph;
use graph::traits::Graph;
use graph::varint::{decode_signed_varint, decode_varint, encode_signed_varint, encode_varint};
use graph::{EdgeWeight, NodeId, NodeWeight};

/// Storage backend of one shard's adjacency.
#[derive(Debug, Clone)]
pub enum ShardStorage {
    /// Plain CSR-style arrays with global neighbour IDs.
    Uncompressed {
        /// Offsets into `adjacency`, one per owned vertex plus one.
        xadj: Vec<u64>,
        /// Global neighbour IDs.
        adjacency: Vec<NodeId>,
        /// Edge weights (empty when the graph is unweighted).
        weights: Vec<EdgeWeight>,
    },
    /// Gap + VarInt encoded neighbourhoods (gap-encoded relative to the owned vertex's
    /// global ID, weights as signed deltas). Interval encoding is omitted in the
    /// distributed shards; see DESIGN.md.
    Compressed {
        /// Byte offset of each owned vertex's encoded neighbourhood.
        offsets: Vec<u64>,
        /// Encoded neighbourhood bytes.
        data: Vec<u8>,
        /// Degrees of the owned vertices.
        degrees: Vec<NodeId>,
        /// Whether edge weights are stored.
        weighted: bool,
    },
}

/// One PE's part of the distributed graph.
#[derive(Debug, Clone)]
pub struct Shard {
    /// Rank of the owning PE.
    pub pe: usize,
    /// First owned global vertex (inclusive).
    pub begin: NodeId,
    /// One past the last owned global vertex (exclusive).
    pub end: NodeId,
    /// Adjacency storage for owned vertices.
    pub storage: ShardStorage,
    /// Node weights of owned vertices.
    pub node_weights: Vec<NodeWeight>,
    /// Global IDs of ghost vertices (neighbours owned by other PEs), sorted.
    pub ghosts: Vec<NodeId>,
}

impl Shard {
    /// Number of owned vertices.
    pub fn num_owned(&self) -> usize {
        (self.end - self.begin) as usize
    }

    /// Returns `true` if this shard owns global vertex `u`.
    pub fn owns(&self, u: NodeId) -> bool {
        u >= self.begin && u < self.end
    }

    /// Weight of owned global vertex `u`.
    pub fn node_weight(&self, u: NodeId) -> NodeWeight {
        self.node_weights[(u - self.begin) as usize]
    }

    /// Degree of owned global vertex `u`.
    pub fn degree(&self, u: NodeId) -> usize {
        let local = (u - self.begin) as usize;
        match &self.storage {
            ShardStorage::Uncompressed { xadj, .. } => (xadj[local + 1] - xadj[local]) as usize,
            ShardStorage::Compressed { degrees, .. } => degrees[local] as usize,
        }
    }

    /// Invokes `f(global_neighbor, weight)` for every neighbour of owned vertex `u`.
    pub fn for_each_neighbor(&self, u: NodeId, f: &mut dyn FnMut(NodeId, EdgeWeight)) {
        let local = (u - self.begin) as usize;
        match &self.storage {
            ShardStorage::Uncompressed {
                xadj,
                adjacency,
                weights,
            } => {
                for e in xadj[local] as usize..xadj[local + 1] as usize {
                    let w = if weights.is_empty() { 1 } else { weights[e] };
                    f(adjacency[e], w);
                }
            }
            ShardStorage::Compressed {
                offsets,
                data,
                degrees,
                weighted,
            } => {
                let mut pos = offsets[local] as usize;
                let degree = degrees[local] as usize;
                let mut prev = u as i64;
                let mut ids = Vec::with_capacity(degree);
                for i in 0..degree {
                    let v = if i == 0 {
                        let (delta, p) = decode_signed_varint(data, pos);
                        pos = p;
                        (u as i64) + delta
                    } else {
                        let (gap, p) = decode_varint(data, pos);
                        pos = p;
                        prev + gap as i64 + 1
                    };
                    prev = v;
                    ids.push(v as NodeId);
                }
                if *weighted {
                    let mut prev_w = 0i64;
                    for &v in &ids {
                        let (delta, p) = decode_signed_varint(data, pos);
                        pos = p;
                        prev_w += delta;
                        f(v, prev_w as EdgeWeight);
                    }
                } else {
                    for &v in &ids {
                        f(v, 1);
                    }
                }
            }
        }
    }

    /// Bytes of memory used by this shard (adjacency storage, node weights and the ghost
    /// table) — the per-PE memory the distributed experiments report.
    pub fn memory_bytes(&self) -> usize {
        let storage = match &self.storage {
            ShardStorage::Uncompressed {
                xadj,
                adjacency,
                weights,
            } => xadj.len() * 8 + adjacency.len() * 4 + weights.len() * 8,
            ShardStorage::Compressed {
                offsets,
                data,
                degrees,
                ..
            } => offsets.len() * 8 + data.len() + degrees.len() * std::mem::size_of::<NodeId>(),
        };
        storage + self.node_weights.len() * 8 + self.ghosts.len() * 4
    }
}

/// The distributed graph: one shard per PE plus the global metadata every PE knows.
#[derive(Debug, Clone)]
pub struct DistGraph {
    /// Per-PE shards, indexed by rank.
    pub shards: Vec<Shard>,
    /// Global number of vertices.
    pub n: usize,
    /// Global number of undirected edges.
    pub m: usize,
    /// Range boundaries: PE `i` owns vertices `[boundaries[i], boundaries[i + 1])`.
    pub boundaries: Vec<NodeId>,
    /// Global total node weight.
    pub total_node_weight: NodeWeight,
}

impl DistGraph {
    /// Shards `graph` across `num_pes` PEs, balancing the number of edges per shard.
    /// When `compressed` is set, each shard stores its adjacency gap/VarInt-encoded
    /// (the XTeraPart configuration).
    pub fn shard(graph: &CsrGraph, num_pes: usize, compressed: bool) -> Self {
        assert!(num_pes >= 1);
        let n = graph.n();
        let total_half_edges = 2 * graph.m();
        let target = total_half_edges.div_ceil(num_pes).max(1);
        // Contiguous ranges with roughly `target` half-edges each.
        let mut boundaries: Vec<NodeId> = vec![0];
        let mut acc = 0usize;
        for u in 0..n as NodeId {
            acc += graph.degree(u);
            if acc >= target && (boundaries.len() as usize) < num_pes {
                boundaries.push(u + 1);
                acc = 0;
            }
        }
        while boundaries.len() < num_pes {
            boundaries.push(n as NodeId);
        }
        boundaries.push(n as NodeId);

        let weighted = graph.is_edge_weighted();
        let shards: Vec<Shard> = (0..num_pes)
            .map(|pe| {
                let begin = boundaries[pe];
                let end = boundaries[pe + 1];
                let mut ghosts: Vec<NodeId> = Vec::new();
                let node_weights: Vec<NodeWeight> =
                    (begin..end).map(|u| graph.node_weight(u)).collect();
                let storage = if compressed {
                    let mut offsets = Vec::with_capacity((end - begin) as usize);
                    let mut degrees = Vec::with_capacity((end - begin) as usize);
                    let mut data = Vec::new();
                    for u in begin..end {
                        offsets.push(data.len() as u64);
                        let mut nbrs = graph.neighbors_vec(u);
                        nbrs.sort_unstable_by_key(|&(v, _)| v);
                        degrees.push(graph::ids::nid_count(nbrs.len()));
                        let mut prev = u as i64;
                        for (i, &(v, _)) in nbrs.iter().enumerate() {
                            if i == 0 {
                                encode_signed_varint((v as i64) - prev, &mut data);
                            } else {
                                encode_varint(((v as i64) - prev - 1) as u64, &mut data);
                            }
                            prev = v as i64;
                            if v < begin || v >= end {
                                ghosts.push(v);
                            }
                        }
                        if weighted {
                            let mut prev_w = 0i64;
                            for &(_, w) in &nbrs {
                                encode_signed_varint(w as i64 - prev_w, &mut data);
                                prev_w = w as i64;
                            }
                        }
                    }
                    ShardStorage::Compressed {
                        offsets,
                        data,
                        degrees,
                        weighted,
                    }
                } else {
                    let mut xadj = vec![0u64];
                    let mut adjacency = Vec::new();
                    let mut weights = Vec::new();
                    for u in begin..end {
                        graph.for_each_neighbor(u, &mut |v, w| {
                            adjacency.push(v);
                            if weighted {
                                weights.push(w);
                            }
                            if v < begin || v >= end {
                                ghosts.push(v);
                            }
                        });
                        xadj.push(adjacency.len() as u64);
                    }
                    ShardStorage::Uncompressed {
                        xadj,
                        adjacency,
                        weights,
                    }
                };
                ghosts.sort_unstable();
                ghosts.dedup();
                Shard {
                    pe,
                    begin,
                    end,
                    storage,
                    node_weights,
                    ghosts,
                }
            })
            .collect();

        Self {
            shards,
            n,
            m: graph.m(),
            boundaries,
            total_node_weight: graph.total_node_weight(),
        }
    }

    /// Rank of the PE owning global vertex `u`.
    pub fn owner(&self, u: NodeId) -> usize {
        // boundaries is small (p + 1 entries): binary search.
        match self.boundaries.binary_search(&u) {
            Ok(i) => i.min(self.shards.len() - 1),
            Err(i) => i - 1,
        }
    }

    /// Maximum per-PE memory in bytes (the quantity limiting scalability in Figure 8).
    pub fn max_pe_memory(&self) -> usize {
        self.shards
            .iter()
            .map(|s| s.memory_bytes())
            .max()
            .unwrap_or(0)
    }

    /// Total memory across PEs.
    pub fn total_memory(&self) -> usize {
        self.shards.iter().map(|s| s.memory_bytes()).sum()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use graph::gen;

    fn check_sharding(graph: &CsrGraph, dist: &DistGraph) {
        // Every vertex is owned by exactly one PE and the ranges tile [0, n).
        assert_eq!(dist.boundaries[0], 0);
        assert_eq!(*dist.boundaries.last().unwrap() as usize, graph.n());
        let total_owned: usize = dist.shards.iter().map(|s| s.num_owned()).sum();
        assert_eq!(total_owned, graph.n());
        // Shard adjacency reproduces the original neighbourhoods.
        for shard in &dist.shards {
            for u in shard.begin..shard.end {
                assert_eq!(shard.degree(u), graph.degree(u));
                assert_eq!(shard.node_weight(u), graph.node_weight(u));
                let mut a = graph.neighbors_vec(u);
                let mut b = Vec::new();
                shard.for_each_neighbor(u, &mut |v, w| b.push((v, w)));
                a.sort_unstable();
                b.sort_unstable();
                assert_eq!(a, b, "neighborhood mismatch at {}", u);
                assert_eq!(dist.owner(u), shard.pe);
            }
            // Ghosts are exactly the externally owned neighbours.
            for &g in &shard.ghosts {
                assert!(!shard.owns(g));
            }
        }
    }

    #[test]
    fn sharding_preserves_the_graph_uncompressed_and_compressed() {
        let g = gen::rgg2d(800, 10, 3);
        for compressed in [false, true] {
            let dist = DistGraph::shard(&g, 4, compressed);
            assert_eq!(dist.shards.len(), 4);
            check_sharding(&g, &dist);
        }
    }

    #[test]
    fn weighted_graphs_shard_correctly() {
        let g = gen::with_random_edge_weights(&gen::erdos_renyi(200, 800, 1), 7, 2);
        let dist = DistGraph::shard(&g, 3, true);
        check_sharding(&g, &dist);
    }

    #[test]
    fn compression_reduces_per_pe_memory() {
        let g = gen::rgg2d(3000, 24, 5);
        let plain = DistGraph::shard(&g, 4, false);
        let compressed = DistGraph::shard(&g, 4, true);
        assert!(
            compressed.max_pe_memory() < plain.max_pe_memory(),
            "compressed shards should be smaller: {} vs {}",
            compressed.max_pe_memory(),
            plain.max_pe_memory()
        );
        assert!(compressed.total_memory() < plain.total_memory());
    }

    #[test]
    fn edge_balance_across_pes() {
        let g = gen::rhg_like(2000, 12, 3.0, 7);
        let dist = DistGraph::shard(&g, 4, false);
        let edges_per_pe: Vec<usize> = dist
            .shards
            .iter()
            .map(|s| (s.begin..s.end).map(|u| s.degree(u)).sum())
            .collect();
        let max = *edges_per_pe.iter().max().unwrap();
        let avg = edges_per_pe.iter().sum::<usize>() / edges_per_pe.len();
        assert!(
            max <= 2 * avg + g.max_degree(),
            "imbalanced shards: {:?}",
            edges_per_pe
        );
    }

    #[test]
    fn single_pe_owns_everything() {
        let g = gen::grid2d(5, 5);
        let dist = DistGraph::shard(&g, 1, false);
        assert_eq!(dist.shards[0].num_owned(), 25);
        assert!(dist.shards[0].ghosts.is_empty());
        check_sharding(&g, &dist);
    }

    #[test]
    fn more_pes_than_interesting_vertices() {
        let g = gen::path(6);
        let dist = DistGraph::shard(&g, 8, false);
        check_sharding(&g, &dist);
        assert_eq!(dist.shards.len(), 8);
    }
}
