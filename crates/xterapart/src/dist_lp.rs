//! Batch-synchronous distributed label propagation (paper §II-B).
//!
//! Both distributed coarsening (clustering) and distributed refinement in dKaMinPar are
//! label propagation algorithms that process batches of vertices synchronously: every PE
//! updates the labels of its owned vertices using the most recent labels it knows for its
//! ghost vertices, then all PEs exchange the labels that changed so the ghost replicas are
//! refreshed before the next round. Cluster/block weights are kept approximately
//! consistent by exchanging per-label weight contributions every round.

use std::collections::HashMap;

use graph::{NodeId, NodeWeight};

use crate::dist_graph::{DistGraph, Shard};
use crate::mpi_sim::Communicator;

/// Message type used by the distributed algorithms (encoded label updates).
pub type Message = Vec<u64>;

/// Runs distributed label propagation clustering on this PE's shard.
///
/// Returns the final labels of the owned vertices as `(global vertex, label)` pairs.
/// Labels are global vertex IDs (a vertex starts in its own singleton cluster).
pub fn distributed_lp_clustering(
    comm: &Communicator<Message>,
    dist: &DistGraph,
    shard: &Shard,
    max_cluster_weight: NodeWeight,
    rounds: usize,
) -> Vec<(NodeId, NodeId)> {
    // Labels known to this PE: owned vertices plus ghost replicas.
    let mut labels: HashMap<NodeId, NodeId> = HashMap::new();
    for u in shard.begin..shard.end {
        labels.insert(u, u);
    }
    for &g in &shard.ghosts {
        labels.insert(g, g);
    }
    // Global cluster weights, refreshed every round from all PEs' contributions.
    let mut cluster_weights: HashMap<NodeId, NodeWeight> = HashMap::new();
    sync_cluster_weights(comm, shard, &labels, &mut cluster_weights);

    for _ in 0..rounds {
        let mut changed: Vec<u64> = Vec::new();
        let mut moved = 0u64;
        for u in shard.begin..shard.end {
            let current = labels[&u];
            // Rate the neighbouring clusters.
            let mut ratings: HashMap<NodeId, u64> = HashMap::new();
            shard.for_each_neighbor(u, &mut |v, w| {
                let label = *labels.get(&v).unwrap_or(&v);
                *ratings.entry(label).or_insert(0) += w;
            });
            let node_weight = shard.node_weight(u);
            let mut best: Option<(NodeId, u64)> = None;
            for (&label, &rating) in &ratings {
                let weight = *cluster_weights.get(&label).unwrap_or(&0);
                let feasible = label == current || weight + node_weight <= max_cluster_weight;
                if !feasible {
                    continue;
                }
                best = match best {
                    None => Some((label, rating)),
                    Some((bl, br)) => {
                        if rating > br || (rating == br && label == current && bl != current) {
                            Some((label, rating))
                        } else {
                            Some((bl, br))
                        }
                    }
                };
            }
            if let Some((target, _)) = best {
                if target != current {
                    labels.insert(u, target);
                    *cluster_weights.entry(current).or_insert(node_weight) -=
                        node_weight.min(*cluster_weights.get(&current).unwrap_or(&0));
                    *cluster_weights.entry(target).or_insert(0) += node_weight;
                    changed.push(graph::ids::widen(u));
                    changed.push(graph::ids::widen(target));
                    moved += 1;
                }
            }
        }
        // Exchange the label updates: every PE learns the new labels and refreshes the
        // replicas of its ghost vertices.
        let gathered = comm.allgather_u64(&changed);
        for part in &gathered {
            for pair in part.chunks_exact(2) {
                let vertex = pair[0] as NodeId;
                let label = pair[1] as NodeId;
                if labels.contains_key(&vertex) {
                    labels.insert(vertex, label);
                }
            }
        }
        // Re-synchronise the global cluster weights.
        sync_cluster_weights(comm, shard, &labels, &mut cluster_weights);
        let total_moved = comm.allreduce_sum(moved);
        if total_moved == 0 {
            break;
        }
    }

    // `dist` is accepted for symmetry with future owner-based point-to-point exchange;
    // the current all-gather based exchange only needs the shard.
    let _ = dist;
    (shard.begin..shard.end).map(|u| (u, labels[&u])).collect()
}

/// Recomputes the global per-cluster weights: every PE contributes the weights of its
/// owned vertices grouped by label; the contributions are all-gathered and summed.
fn sync_cluster_weights(
    comm: &Communicator<Message>,
    shard: &Shard,
    labels: &HashMap<NodeId, NodeId>,
    cluster_weights: &mut HashMap<NodeId, NodeWeight>,
) {
    let mut local: HashMap<NodeId, NodeWeight> = HashMap::new();
    for u in shard.begin..shard.end {
        *local.entry(labels[&u]).or_insert(0) += shard.node_weight(u);
    }
    let mut payload: Vec<u64> = Vec::with_capacity(2 * local.len());
    for (&label, &weight) in &local {
        payload.push(graph::ids::widen(label));
        payload.push(weight);
    }
    let gathered = comm.allgather_u64(&payload);
    cluster_weights.clear();
    for part in &gathered {
        for pair in part.chunks_exact(2) {
            *cluster_weights.entry(pair[0] as NodeId).or_insert(0) += pair[1];
        }
    }
}

/// Runs distributed size-constrained label propagation *refinement* on this PE's shard.
///
/// `assignment` maps every vertex this PE knows (owned + ghosts) to its block. Returns
/// the refined blocks of the owned vertices.
#[allow(clippy::too_many_arguments)]
pub fn distributed_lp_refinement(
    comm: &Communicator<Message>,
    shard: &Shard,
    assignment: &mut HashMap<NodeId, u32>,
    k: usize,
    max_block_weight: NodeWeight,
    rounds: usize,
) -> Vec<(NodeId, u32)> {
    // Global block weights via all-reduce (one entry per block).
    let mut block_weights = vec![0u64; k];
    let sync_block_weights = |assignment: &HashMap<NodeId, u32>, block_weights: &mut Vec<u64>| {
        let mut local = vec![0u64; k];
        for u in shard.begin..shard.end {
            local[assignment[&u] as usize] += shard.node_weight(u);
        }
        let gathered = comm.allgather_u64(&local);
        for w in block_weights.iter_mut() {
            *w = 0;
        }
        for part in &gathered {
            for (b, &w) in part.iter().enumerate() {
                block_weights[b] += w;
            }
        }
    };
    sync_block_weights(assignment, &mut block_weights);

    for _ in 0..rounds {
        let mut changed: Vec<u64> = Vec::new();
        let mut moved = 0u64;
        for u in shard.begin..shard.end {
            let current = assignment[&u];
            let mut ratings: HashMap<u32, u64> = HashMap::new();
            shard.for_each_neighbor(u, &mut |v, w| {
                let block = *assignment.get(&v).unwrap_or(&current);
                *ratings.entry(block).or_insert(0) += w;
            });
            let current_affinity = *ratings.get(&current).unwrap_or(&0);
            let node_weight = shard.node_weight(u);
            let mut best: Option<(u32, u64)> = None;
            for (&block, &affinity) in &ratings {
                if block == current || affinity <= current_affinity {
                    continue;
                }
                if block_weights[block as usize] + node_weight > max_block_weight {
                    continue;
                }
                best = match best {
                    None => Some((block, affinity)),
                    Some((_, bw)) if affinity > bw => Some((block, affinity)),
                    other => other,
                };
            }
            if let Some((target, _)) = best {
                assignment.insert(u, target);
                block_weights[current as usize] =
                    block_weights[current as usize].saturating_sub(node_weight);
                block_weights[target as usize] += node_weight;
                changed.push(graph::ids::widen(u));
                changed.push(u64::from(target));
                moved += 1;
            }
        }
        let gathered = comm.allgather_u64(&changed);
        for part in &gathered {
            for pair in part.chunks_exact(2) {
                let vertex = pair[0] as NodeId;
                if assignment.contains_key(&vertex) {
                    assignment.insert(vertex, pair[1] as u32);
                }
            }
        }
        sync_block_weights(assignment, &mut block_weights);
        if comm.allreduce_sum(moved) == 0 {
            break;
        }
    }

    (shard.begin..shard.end)
        .map(|u| (u, assignment[&u]))
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::mpi_sim::run_on_pes;
    use graph::gen;
    use graph::traits::Graph;
    use std::sync::Arc;

    #[test]
    fn distributed_clustering_shrinks_and_respects_weights() {
        let g = gen::rgg2d(600, 10, 3);
        let dist = Arc::new(DistGraph::shard(&g, 3, false));
        let max_weight = 8;
        let results = run_on_pes::<Message, _, _>(3, |comm| {
            let dist = Arc::clone(&dist);
            let shard = dist.shards[comm.rank()].clone();
            distributed_lp_clustering(&comm, &dist, &shard, max_weight, 4)
        });
        let mut labels = vec![NodeId::MAX; g.n()];
        for part in &results {
            for &(u, label) in part {
                labels[u as usize] = label;
            }
        }
        assert!(labels.iter().all(|&l| l != NodeId::MAX));
        // Cluster weights respect the limit.
        let mut weights: HashMap<NodeId, u64> = HashMap::new();
        for (u, &label) in labels.iter().enumerate() {
            *weights.entry(label).or_insert(0) += g.node_weight(u as NodeId);
        }
        // Weights are only synchronised between rounds, so concurrent moves on different
        // PEs may overshoot slightly within a round (the paper repairs this in a separate
        // rebalancing step); allow a modest overshoot here.
        assert!(
            weights.values().all(|&w| w <= 2 * max_weight),
            "cluster weight overshoot too large: {:?}",
            weights.values().max()
        );
        // The clustering shrinks the graph substantially.
        assert!(
            weights.len() < g.n() / 2,
            "only {} clusters formed",
            g.n() - weights.len()
        );
    }

    #[test]
    fn distributed_refinement_improves_a_scrambled_partition() {
        let g = gen::grid2d(20, 20);
        let k = 4;
        let dist = Arc::new(DistGraph::shard(&g, 4, true)); // compressed shards
        let initial: Vec<u32> = (0..g.n() as u32)
            .map(|u| (u.wrapping_mul(2_654_435_761) >> 8) % k as u32)
            .collect();
        let initial = Arc::new(initial);
        let max_block_weight = ((g.n() as f64 / k as f64) * 1.1).ceil() as u64;
        let results = run_on_pes::<Message, _, _>(4, |comm| {
            let dist = Arc::clone(&dist);
            let shard = dist.shards[comm.rank()].clone();
            let mut assignment: HashMap<NodeId, u32> = HashMap::new();
            for u in shard.begin..shard.end {
                assignment.insert(u, initial[u as usize]);
            }
            for &ghost in &shard.ghosts {
                assignment.insert(ghost, initial[ghost as usize]);
            }
            distributed_lp_refinement(&comm, &shard, &mut assignment, k, max_block_weight, 4)
        });
        let mut refined = initial.as_ref().clone();
        for part in &results {
            for &(u, b) in part {
                refined[u as usize] = b;
            }
        }
        let cut = |assignment: &[u32]| -> u64 {
            let mut cut = 0;
            for u in 0..g.n() as NodeId {
                g.for_each_neighbor(u, &mut |v, w| {
                    if u < v && assignment[u as usize] != assignment[v as usize] {
                        cut += w;
                    }
                });
            }
            cut
        };
        assert!(
            cut(&refined) < cut(&initial),
            "{} !< {}",
            cut(&refined),
            cut(&initial)
        );
        // Block weights respect the constraint.
        let mut weights = vec![0u64; k];
        for (u, &b) in refined.iter().enumerate() {
            weights[b as usize] += g.node_weight(u as NodeId);
        }
        // As above, allow the small per-round overshoot inherent to batch-synchronous
        // weight tracking; the driver repairs residual violations by rebalancing.
        let tolerance = (max_block_weight as f64 * 1.10).ceil() as u64;
        assert!(
            weights.iter().all(|&w| w <= tolerance),
            "{:?} > {}",
            weights,
            tolerance
        );
    }
}
