//! XTeraPart: distributed-memory multilevel partitioning on a simulated message-passing
//! substrate.
//!
//! The paper's distributed experiments (Figure 8, Table III) run the distributed version
//! of KaMinPar (dKaMinPar) equipped with TeraPart's graph compression on an MPI cluster.
//! No cluster is available to this reproduction, so the *algorithmic structure* is
//! reproduced on a single machine:
//!
//! * [`mpi_sim`] — a message-passing substrate where every "processing element" (PE) is a
//!   thread with point-to-point channels and the collectives dKaMinPar uses (barrier,
//!   all-reduce, all-gather).
//! * [`dist_graph`] — edge-balanced sharding of a graph across PEs with ghost-vertex
//!   replication (paper §II-B), optionally storing each shard in the compressed
//!   representation (the XTeraPart configuration).
//! * [`dist_lp`] — batch-synchronous distributed label propagation used for both
//!   clustering and refinement, exchanging interface labels after every batch.
//! * [`partitioner`] — the distributed multilevel driver: distributed coarsening, initial
//!   partitioning of the (replicated) coarsest graph with shared-memory TeraPart, and
//!   distributed refinement during uncoarsening, with per-PE memory accounting.
//!
//! The quantities the experiments report — edge cut, wall-clock time, maximum per-PE
//! memory, throughput (edges/second) — are exposed in
//! [`partitioner::DistPartitionResult`].

pub mod dist_graph;
pub mod dist_lp;
pub mod mpi_sim;
pub mod partitioner;

pub use dist_graph::DistGraph;
pub use mpi_sim::Communicator;
pub use partitioner::{dist_partition, DistPartitionConfig, DistPartitionResult};
