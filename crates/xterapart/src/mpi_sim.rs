//! A minimal message-passing substrate standing in for MPI.
//!
//! Each processing element (PE) is a thread. PEs communicate through typed point-to-point
//! channels and a small set of collectives (barrier, all-gather, all-reduce) — the
//! operations dKaMinPar's batch-synchronous label propagation and its initial-partitioning
//! broadcast rely on. The substrate is deliberately synchronous and simple: the goal is to
//! reproduce the *communication structure* (who sends what to whom, and when processes
//! wait), not network performance.

use std::sync::{Arc, Barrier, Mutex};

use crossbeam::channel::{unbounded, Receiver, Sender};

/// The communication handle owned by one PE.
pub struct Communicator<M: Send> {
    rank: usize,
    size: usize,
    senders: Vec<Sender<(usize, M)>>,
    receiver: Receiver<(usize, M)>,
    barrier: Arc<Barrier>,
    gather_slots: Arc<Mutex<Vec<Option<Vec<u8>>>>>,
    reduce_slots: Arc<Mutex<Vec<u64>>>,
}

impl<M: Send> Communicator<M> {
    /// Creates communicators for `size` PEs.
    pub fn create(size: usize) -> Vec<Communicator<M>> {
        assert!(size >= 1);
        let mut senders = Vec::with_capacity(size);
        let mut receivers = Vec::with_capacity(size);
        for _ in 0..size {
            let (tx, rx) = unbounded();
            senders.push(tx);
            receivers.push(rx);
        }
        let barrier = Arc::new(Barrier::new(size));
        let gather_slots = Arc::new(Mutex::new(vec![None; size]));
        let reduce_slots = Arc::new(Mutex::new(vec![0u64; size]));
        receivers
            .into_iter()
            .enumerate()
            .map(|(rank, receiver)| Communicator {
                rank,
                size,
                senders: senders.clone(),
                receiver,
                barrier: Arc::clone(&barrier),
                gather_slots: Arc::clone(&gather_slots),
                reduce_slots: Arc::clone(&reduce_slots),
            })
            .collect()
    }

    /// This PE's rank in `0..size`.
    pub fn rank(&self) -> usize {
        self.rank
    }

    /// Number of PEs.
    pub fn size(&self) -> usize {
        self.size
    }

    /// Sends a message to PE `to` (non-blocking).
    pub fn send(&self, to: usize, message: M) {
        self.senders[to]
            .send((self.rank, message))
            .expect("PE channel closed unexpectedly");
    }

    /// Receives all messages currently queued for this PE.
    pub fn drain(&self) -> Vec<(usize, M)> {
        let mut out = Vec::new();
        while let Ok(msg) = self.receiver.try_recv() {
            out.push(msg);
        }
        out
    }

    /// Synchronises all PEs.
    pub fn barrier(&self) {
        self.barrier.wait();
    }

    /// All-reduce with addition over `u64`.
    pub fn allreduce_sum(&self, value: u64) -> u64 {
        {
            let mut slots = self.reduce_slots.lock().unwrap();
            slots[self.rank] = value;
        }
        self.barrier();
        let sum = {
            let slots = self.reduce_slots.lock().unwrap();
            slots.iter().sum()
        };
        self.barrier();
        sum
    }

    /// All-reduce with maximum over `u64`.
    pub fn allreduce_max(&self, value: u64) -> u64 {
        {
            let mut slots = self.reduce_slots.lock().unwrap();
            slots[self.rank] = value;
        }
        self.barrier();
        let max = {
            let slots = self.reduce_slots.lock().unwrap();
            slots.iter().copied().max().unwrap_or(0)
        };
        self.barrier();
        max
    }

    /// All-gather of raw byte payloads: every PE contributes `payload` and receives the
    /// payloads of all PEs in rank order. Used to replicate the coarsest graph and to
    /// gather clusterings.
    pub fn allgather_bytes(&self, payload: Vec<u8>) -> Vec<Vec<u8>> {
        {
            let mut slots = self.gather_slots.lock().unwrap();
            slots[self.rank] = Some(payload);
        }
        self.barrier();
        let gathered: Vec<Vec<u8>> = {
            let slots = self.gather_slots.lock().unwrap();
            slots
                .iter()
                .map(|s| s.clone().expect("missing allgather contribution"))
                .collect()
        };
        self.barrier();
        {
            let mut slots = self.gather_slots.lock().unwrap();
            slots[self.rank] = None;
        }
        self.barrier();
        gathered
    }

    /// All-gather of `u64` vectors (convenience wrapper over [`Self::allgather_bytes`]).
    pub fn allgather_u64(&self, values: &[u64]) -> Vec<Vec<u64>> {
        let bytes: Vec<u8> = values.iter().flat_map(|v| v.to_le_bytes()).collect();
        self.allgather_bytes(bytes)
            .into_iter()
            .map(|b| {
                b.chunks_exact(8)
                    .map(|c| u64::from_le_bytes(c.try_into().unwrap()))
                    .collect()
            })
            .collect()
    }
}

/// Runs `f` on `size` PEs (threads), passing each its communicator, and returns the
/// per-rank results in rank order.
pub fn run_on_pes<M, R, F>(size: usize, f: F) -> Vec<R>
where
    M: Send + 'static,
    R: Send,
    F: Fn(Communicator<M>) -> R + Sync,
{
    let comms = Communicator::<M>::create(size);
    let mut results: Vec<Option<R>> = Vec::with_capacity(size);
    results.resize_with(size, || None);
    let results_mutex = Mutex::new(&mut results);
    std::thread::scope(|scope| {
        for comm in comms {
            let f = &f;
            let results_mutex = &results_mutex;
            scope.spawn(move || {
                let rank = comm.rank();
                let result = f(comm);
                results_mutex.lock().unwrap()[rank] = Some(result);
            });
        }
    });
    results
        .into_iter()
        .map(|r| r.expect("PE did not produce a result"))
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn point_to_point_messages_arrive() {
        let results = run_on_pes::<u64, _, _>(4, |comm| {
            // Every PE sends its rank to every other PE.
            for to in 0..comm.size() {
                if to != comm.rank() {
                    comm.send(to, comm.rank() as u64);
                }
            }
            comm.barrier();
            let mut received: Vec<(usize, u64)> = comm.drain();
            received.sort_unstable();
            received
        });
        for (rank, received) in results.iter().enumerate() {
            assert_eq!(received.len(), 3);
            for &(from, value) in received {
                assert_eq!(from as u64, value);
                assert_ne!(from, rank);
            }
        }
    }

    #[test]
    fn allreduce_sum_and_max() {
        let results = run_on_pes::<(), _, _>(3, |comm| {
            let sum = comm.allreduce_sum((comm.rank() + 1) as u64);
            let max = comm.allreduce_max((comm.rank() * 10) as u64);
            (sum, max)
        });
        for &(sum, max) in &results {
            assert_eq!(sum, 6);
            assert_eq!(max, 20);
        }
    }

    #[test]
    fn allgather_collects_in_rank_order() {
        let results = run_on_pes::<(), _, _>(4, |comm| {
            comm.allgather_u64(&[comm.rank() as u64, 100 + comm.rank() as u64])
        });
        for gathered in results {
            assert_eq!(gathered.len(), 4);
            for (rank, part) in gathered.iter().enumerate() {
                assert_eq!(part, &vec![rank as u64, 100 + rank as u64]);
            }
        }
    }

    #[test]
    fn single_pe_works() {
        let results = run_on_pes::<(), _, _>(1, |comm| {
            assert_eq!(comm.size(), 1);
            comm.allreduce_sum(5)
        });
        assert_eq!(results, vec![5]);
    }

    #[test]
    fn repeated_collectives_do_not_deadlock() {
        let results = run_on_pes::<(), _, _>(3, |comm| {
            let mut total = 0;
            for i in 0..20u64 {
                total += comm.allreduce_sum(i);
            }
            total
        });
        assert!(results.iter().all(|&r| r == results[0]));
    }
}
