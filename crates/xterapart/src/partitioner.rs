//! The distributed multilevel partitioning driver (XTeraPart).
//!
//! The pipeline mirrors dKaMinPar (paper §II-B): the graph is sharded with ghost
//! vertices, coarsening uses distributed label propagation, the (much smaller) coarse
//! graph is replicated on every PE and partitioned with the shared-memory partitioner,
//! and the resulting partition is projected back and improved with distributed label
//! propagation refinement followed by rebalancing. Per-PE memory (shard + ghost tables +
//! replicated coarse graph) is reported so the Figure 8 memory comparison between
//! DKaMinPar (uncompressed shards) and XTeraPart (compressed shards) can be reproduced.

use std::collections::HashMap;
use std::sync::Arc;
use std::time::{Duration, Instant};

use graph::csr::{CsrGraph, CsrGraphBuilder};
use graph::traits::Graph;
use graph::{EdgeWeight, NodeId, NodeWeight};
use terapart::{partition as shared_partition, PartitionerConfig};

use crate::dist_graph::DistGraph;
use crate::dist_lp::{distributed_lp_clustering, distributed_lp_refinement, Message};
use crate::mpi_sim::run_on_pes;

/// Configuration of a distributed partitioning run.
#[derive(Debug, Clone)]
pub struct DistPartitionConfig {
    /// Number of blocks.
    pub k: usize,
    /// Imbalance parameter ε.
    pub epsilon: f64,
    /// Number of simulated PEs (compute nodes).
    pub num_pes: usize,
    /// Store the shards compressed (XTeraPart) or uncompressed (DKaMinPar).
    pub compressed_shards: bool,
    /// Rounds of distributed label propagation per stage.
    pub lp_rounds: usize,
    /// Random seed for the shared-memory partitioning of the coarse graph.
    pub seed: u64,
}

impl DistPartitionConfig {
    /// The XTeraPart configuration: compressed shards.
    pub fn xterapart(k: usize, num_pes: usize) -> Self {
        Self {
            k,
            epsilon: 0.03,
            num_pes,
            compressed_shards: true,
            lp_rounds: 3,
            seed: 1,
        }
    }

    /// The DKaMinPar baseline configuration: uncompressed shards.
    pub fn dkaminpar(k: usize, num_pes: usize) -> Self {
        Self {
            compressed_shards: false,
            ..Self::xterapart(k, num_pes)
        }
    }
}

/// Result of a distributed partitioning run.
#[derive(Debug, Clone)]
pub struct DistPartitionResult {
    /// Block of every global vertex.
    pub assignment: Vec<u32>,
    /// Edge cut on the input graph.
    pub edge_cut: EdgeWeight,
    /// Imbalance of the partition.
    pub imbalance: f64,
    /// Whether the balance constraint is satisfied.
    pub balanced: bool,
    /// Maximum memory used by any PE, in bytes.
    pub max_pe_memory_bytes: usize,
    /// Wall-clock time of the run.
    pub total_time: Duration,
    /// Undirected edges processed per second of wall-clock time.
    pub throughput_edges_per_sec: f64,
}

/// Partitions `graph` into `config.k` blocks using `config.num_pes` simulated PEs.
pub fn dist_partition(graph: &CsrGraph, config: &DistPartitionConfig) -> DistPartitionResult {
    let start = Instant::now();
    let k = config.k;
    let dist = Arc::new(DistGraph::shard(
        graph,
        config.num_pes,
        config.compressed_shards,
    ));
    let max_block_weight =
        terapart::Partition::compute_max_block_weight(graph.total_node_weight(), k, config.epsilon);
    let max_cluster_weight =
        ((graph.total_node_weight() as f64 / (40.0 * k as f64)).ceil() as NodeWeight).max(1);

    let seed = config.seed;
    let lp_rounds = config.lp_rounds;
    let per_pe: Vec<(Vec<(NodeId, u32)>, usize)> = run_on_pes::<Message, _, _>(config.num_pes, {
        let dist = Arc::clone(&dist);
        move |comm| {
            let shard = dist.shards[comm.rank()].clone();
            let mut pe_memory = shard.memory_bytes();

            // ---- Distributed coarsening: one round of LP clustering + contraction. ----
            let local_labels =
                distributed_lp_clustering(&comm, &dist, &shard, max_cluster_weight, lp_rounds);
            // Gather the full clustering so every PE can aggregate its coarse edges
            // against consistent labels.
            let mut payload: Vec<u64> = Vec::with_capacity(2 * local_labels.len());
            for &(u, label) in &local_labels {
                payload.push(graph::ids::widen(u));
                payload.push(graph::ids::widen(label));
            }
            let gathered = comm.allgather_u64(&payload);
            let mut labels: Vec<NodeId> = vec![0; dist.n];
            for part in &gathered {
                for pair in part.chunks_exact(2) {
                    labels[pair[0] as usize] = pair[1] as NodeId;
                }
            }

            // Aggregate this PE's contribution to the coarse graph: edges between cluster
            // labels induced by the owned vertices, plus cluster weight contributions.
            let mut edge_partials: HashMap<(NodeId, NodeId), EdgeWeight> = HashMap::new();
            let mut weight_partials: HashMap<NodeId, NodeWeight> = HashMap::new();
            for u in shard.begin..shard.end {
                let lu = labels[u as usize];
                *weight_partials.entry(lu).or_insert(0) += shard.node_weight(u);
                shard.for_each_neighbor(u, &mut |v, w| {
                    let lv = labels[v as usize];
                    if lu != lv && u < v {
                        let key = if lu < lv { (lu, lv) } else { (lv, lu) };
                        *edge_partials.entry(key).or_insert(0) += w;
                    }
                });
            }
            // Exchange the partial aggregates; every PE assembles the same coarse graph
            // (the coarse graph is replicated, as dKaMinPar does for initial partitioning).
            let mut edge_payload: Vec<u64> = Vec::with_capacity(3 * edge_partials.len());
            for (&(a, b), &w) in &edge_partials {
                edge_payload.extend_from_slice(&[graph::ids::widen(a), graph::ids::widen(b), w]);
            }
            let mut weight_payload: Vec<u64> = Vec::with_capacity(2 * weight_partials.len());
            for (&l, &w) in &weight_partials {
                weight_payload.extend_from_slice(&[graph::ids::widen(l), w]);
            }
            let all_edges = comm.allgather_u64(&edge_payload);
            let all_weights = comm.allgather_u64(&weight_payload);

            let mut coarse_edges: HashMap<(NodeId, NodeId), EdgeWeight> = HashMap::new();
            for part in &all_edges {
                for triple in part.chunks_exact(3) {
                    *coarse_edges
                        .entry((triple[0] as NodeId, triple[1] as NodeId))
                        .or_insert(0) += triple[2];
                }
            }
            let mut coarse_weights: HashMap<NodeId, NodeWeight> = HashMap::new();
            for part in &all_weights {
                for pair in part.chunks_exact(2) {
                    *coarse_weights.entry(pair[0] as NodeId).or_insert(0) += pair[1];
                }
            }
            // Remap labels to consecutive coarse IDs (deterministically, by label order).
            let mut leaders: Vec<NodeId> = coarse_weights.keys().copied().collect();
            leaders.sort_unstable();
            let coarse_of: HashMap<NodeId, NodeId> = leaders
                .iter()
                .enumerate()
                .map(|(i, &l)| (l, i as NodeId))
                .collect();
            let node_weights: Vec<NodeWeight> = leaders.iter().map(|l| coarse_weights[l]).collect();
            let mut builder = CsrGraphBuilder::with_node_weights(node_weights);
            for (&(a, b), &w) in &coarse_edges {
                builder.add_edge(coarse_of[&a], coarse_of[&b], w);
            }
            let coarse = builder.build();
            pe_memory += coarse.size_in_bytes();

            // ---- Initial partitioning of the replicated coarse graph on rank 0. ----
            let coarse_assignment: Vec<u32> = if comm.rank() == 0 {
                let shared_config = PartitionerConfig::terapart(k)
                    .with_threads(1)
                    .with_seed(seed)
                    .with_epsilon(0.03_f64.min(0.10));
                let result = shared_partition(&coarse, &shared_config);
                result.partition.assignment().to_vec()
            } else {
                Vec::new()
            };
            let payload: Vec<u64> = coarse_assignment.iter().map(|&b| u64::from(b)).collect();
            let gathered = comm.allgather_u64(&payload);
            let coarse_assignment: Vec<u32> = gathered[0].iter().map(|&b| b as u32).collect();

            // ---- Projection + distributed refinement. ----
            let mut assignment: HashMap<NodeId, u32> = HashMap::new();
            for u in shard.begin..shard.end {
                assignment.insert(
                    u,
                    coarse_assignment[coarse_of[&labels[u as usize]] as usize],
                );
            }
            for &ghost in &shard.ghosts {
                assignment.insert(
                    ghost,
                    coarse_assignment[coarse_of[&labels[ghost as usize]] as usize],
                );
            }
            pe_memory += assignment.len() * 12 + shard.ghosts.len() * 8;
            let refined = distributed_lp_refinement(
                &comm,
                &shard,
                &mut assignment,
                k,
                max_block_weight,
                lp_rounds,
            );
            let max_memory = comm.allreduce_max(pe_memory as u64) as usize;
            (refined, max_memory)
        }
    });

    // Assemble the global assignment.
    let mut assignment = vec![0u32; graph.n()];
    let mut max_pe_memory = 0usize;
    for (owned, pe_memory) in &per_pe {
        max_pe_memory = max_pe_memory.max(*pe_memory);
        for &(u, b) in owned {
            assignment[u as usize] = b;
        }
    }
    let mut partition =
        terapart::Partition::from_assignment(graph, k, config.epsilon, assignment.clone());
    // Repair any residual imbalance exactly as dKaMinPar's rebalancing step would.
    if !partition.is_balanced() {
        terapart::refinement::rebalance(graph, &mut partition);
    }
    let assignment: Vec<u32> = partition.assignment().to_vec();
    let edge_cut = partition.edge_cut_on(graph);
    let total_time = start.elapsed();
    DistPartitionResult {
        edge_cut,
        imbalance: partition.imbalance(),
        balanced: partition.is_balanced(),
        max_pe_memory_bytes: max_pe_memory,
        total_time,
        throughput_edges_per_sec: graph.m() as f64 / total_time.as_secs_f64().max(1e-9),
        assignment,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use graph::gen;

    #[test]
    fn distributed_partitioning_produces_a_valid_partition() {
        let g = gen::rgg2d(1200, 10, 3);
        let config = DistPartitionConfig::xterapart(4, 3);
        let result = dist_partition(&g, &config);
        assert_eq!(result.assignment.len(), g.n());
        assert!(result.assignment.iter().all(|&b| (b as usize) < 4));
        assert!(result.edge_cut > 0);
        assert!(result.max_pe_memory_bytes > 0);
        // Quality sanity: far better than a random partition (~3/4 of edges cut).
        assert!(
            (result.edge_cut as f64) < 0.4 * g.m() as f64,
            "cut {} too high for {} edges",
            result.edge_cut,
            g.m()
        );
        assert!(result.imbalance < 0.25, "imbalance {}", result.imbalance);
    }

    #[test]
    fn compressed_shards_use_less_memory_with_similar_quality() {
        let g = gen::rgg2d(2000, 16, 9);
        let xt = dist_partition(&g, &DistPartitionConfig::xterapart(8, 4));
        let dk = dist_partition(&g, &DistPartitionConfig::dkaminpar(8, 4));
        assert!(
            xt.max_pe_memory_bytes < dk.max_pe_memory_bytes,
            "XTeraPart should use less per-PE memory: {} vs {}",
            xt.max_pe_memory_bytes,
            dk.max_pe_memory_bytes
        );
        let ratio = xt.edge_cut.max(1) as f64 / dk.edge_cut.max(1) as f64;
        assert!((0.5..2.0).contains(&ratio), "cut ratio {} diverges", ratio);
    }

    #[test]
    fn single_pe_degenerates_to_shared_memory_flow() {
        let g = gen::grid2d(20, 20);
        let result = dist_partition(&g, &DistPartitionConfig::xterapart(4, 1));
        assert!(result.balanced);
        assert!((result.edge_cut as f64) < 0.3 * g.m() as f64);
    }

    #[test]
    fn weak_scaling_throughput_is_positive() {
        let g = gen::rhg_like(1500, 8, 3.0, 4);
        for pes in [1, 2, 4] {
            let result = dist_partition(&g, &DistPartitionConfig::xterapart(4, pes));
            assert!(result.throughput_edges_per_sec > 0.0);
        }
    }
}
