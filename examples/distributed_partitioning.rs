//! Distributed partitioning with XTeraPart on the simulated message-passing substrate:
//! shards a graph across several PEs (with and without shard compression) and compares
//! per-PE memory and cut quality against the single-level XtraPuLP-like baseline.
//!
//! Run with: `cargo run --release --example distributed_partitioning`
use baselines::xtrapulp_partition;
use graph::gen;
use graph::traits::Graph;
use xterapart::{dist_partition, DistPartitionConfig};

fn main() {
    let graph = gen::rhg_like(40_000, 16, 2.9, 7);
    println!("power-law graph: n = {}, m = {}", graph.n(), graph.m());
    let k = 32;

    for (name, config) in [
        (
            "DKaMinPar (uncompressed shards)",
            DistPartitionConfig::dkaminpar(k, 4),
        ),
        (
            "XTeraPart (compressed shards)",
            DistPartitionConfig::xterapart(k, 4),
        ),
    ] {
        let result = dist_partition(&graph, &config);
        println!(
            "{:<34} cut = {:>8}  max PE memory = {:>12}  time = {:>6.2?}  balanced = {}",
            name,
            result.edge_cut,
            memtrack::format_bytes(result.max_pe_memory_bytes),
            result.total_time,
            result.balanced
        );
    }

    let single_level = xtrapulp_partition(&graph, k, 0.03, 1);
    println!(
        "{:<34} cut = {:>8}  (single-level label propagation, no multilevel)",
        "XtraPuLP-like", single_level.edge_cut
    );
}
