//! Per-phase memory analysis: reproduces the Figure 2 style breakdown for a graph of
//! your choice and shows how the TeraPart optimizations shift the peak.
//!
//! Run with: `cargo run --release --example memory_budget`
use graph::gen;
use memtrack::PhaseTracker;
use terapart::{partition_csr_with_tracker, PartitionerConfig};

fn main() {
    let graph = gen::rgg2d(60_000, 24, 99);
    let k = 64;
    for (name, config) in [
        ("KaMinPar baseline", PartitionerConfig::kaminpar(k)),
        ("TeraPart", PartitionerConfig::terapart(k)),
    ] {
        let tracker = PhaseTracker::new();
        let result = partition_csr_with_tracker(&graph, &config, &tracker);
        println!(
            "== {} (cut = {}, peak = {}) ==",
            name,
            result.edge_cut,
            memtrack::format_bytes(tracker.overall_peak())
        );
        println!(
            "{:<20} {:>6} {:>14} {:>14}",
            "phase", "level", "peak", "auxiliary"
        );
        for report in tracker.reports() {
            println!(
                "{:<20} {:>6} {:>14} {:>14}",
                report.name,
                report.level,
                memtrack::format_bytes(report.peak_bytes),
                memtrack::format_bytes(report.auxiliary_bytes())
            );
        }
        println!();
    }
}
