//! Quickstart: generate a graph, partition it with TeraPart, inspect the result.
//!
//! Run with: `cargo run --release --example quickstart`
use graph::gen;
use graph::traits::Graph;
use terapart::{partition, PartitionerConfig};

fn main() {
    // A mesh-like graph with ~65k vertices.
    let graph = gen::grid2d(256, 256);
    println!("graph: n = {}, m = {}", graph.n(), graph.m());

    // Partition into 16 blocks with the full TeraPart configuration (two-phase label
    // propagation, graph compression, one-pass contraction, LP refinement).
    let config = PartitionerConfig::terapart(16);
    let result = partition(&graph, &config);

    println!("edge cut      : {}", result.edge_cut);
    println!("imbalance     : {:.3}%", result.imbalance * 100.0);
    println!("balanced      : {}", result.partition.is_balanced());
    println!("levels        : {}", result.hierarchy_depth);
    println!("time          : {:.2?}", result.total_time);
    println!(
        "peak memory   : {}",
        memtrack::format_bytes(result.peak_memory_bytes)
    );
    println!("block weights : {:?}", result.partition.block_weights());
}
