//! Partitioning a web-like graph under a memory budget: compares the KaMinPar baseline
//! with the full TeraPart configuration (compressed input, two-phase LP, one-pass
//! contraction) on a skewed, hub-heavy graph — the scenario that motivates the paper.
//!
//! Run with: `cargo run --release --example web_graph_partitioning`
use graph::traits::Graph;
use graph::{gen, CompressedGraph, CompressionConfig};
use terapart::{partition_csr, PartitionerConfig};

fn main() {
    let graph = gen::weblike(15, 14, 2024);
    println!(
        "web-like graph: n = {}, m = {}, max degree = {}",
        graph.n(),
        graph.m(),
        graph.max_degree()
    );

    let compressed = CompressedGraph::from_csr(&graph, &CompressionConfig::default());
    println!(
        "CSR size = {}, compressed size = {} (ratio {:.1})",
        memtrack::format_bytes(graph.size_in_bytes()),
        memtrack::format_bytes(compressed.size_in_bytes()),
        compressed.compression_ratio(&graph)
    );

    for k in [64, 256] {
        println!("\n-- k = {} --", k);
        for (name, config) in [
            ("KaMinPar baseline", PartitionerConfig::kaminpar(k)),
            ("TeraPart", PartitionerConfig::terapart(k)),
        ] {
            let result = partition_csr(&graph, &config);
            println!(
                "{:<20} cut = {:>8} ({:.2}% of edges)  time = {:>6.2?}  peak memory = {}",
                name,
                result.edge_cut,
                100.0 * result.edge_cut as f64 / graph.total_edge_weight() as f64,
                result.total_time,
                memtrack::format_bytes(result.peak_memory_bytes)
            );
        }
    }
}
