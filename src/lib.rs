//! Umbrella crate of the TeraPart reproduction workspace.
//!
//! Re-exports the individual crates so the workspace-level integration tests and examples
//! can address everything through one dependency root:
//!
//! * [`graph`] — graph representations (CSR + compressed), generators and I/O.
//! * [`memtrack`] — memory accounting (tracking allocator, phase tracker, reserve/commit).
//! * [`terapart`] — the shared-memory multilevel partitioner (the paper's contribution).
//! * [`xterapart`] — the simulated distributed-memory partitioner.
//! * [`baselines`] — Mt-METIS-like, XtraPuLP-like, HeiStream-like and semi-external
//!   comparators.

pub use baselines;
pub use graph;
pub use memtrack;
pub use terapart;
pub use xterapart;
