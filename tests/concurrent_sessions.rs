//! Integration tests of the reentrant engine core: concurrent sessions sharing one
//! open store through the engine's registry, and per-session fault isolation — an
//! unrecoverable storage fault fails only the request that hit it, never a co-tenant
//! and never the shared store itself.

use std::sync::Arc;

use graph::store::{stream_rgg2d_to_tpg, FaultPlan, FaultyBackend, FileBackend};
use graph::PagedGraph;
use terapart::{
    EngineConfig, PartitionEngine, PartitionRequest, PartitionerConfig, RetryPolicy, StoreHandle,
};

fn scratch_dir(name: &str) -> std::path::PathBuf {
    let dir = std::env::temp_dir().join(format!(
        "terapart_sessions_it_{}_{}",
        std::process::id(),
        name
    ));
    std::fs::create_dir_all(&dir).unwrap();
    dir
}

/// Eight sessions with distinct seeds and block counts, all on one engine and one
/// shared `Arc<StoreHandle>`, running simultaneously on their own OS threads: each
/// must be bit-identical to a solo run of the same request on a fresh engine, the
/// registry must hand every open of the container the same store, and the scratch
/// arenas must return to the pool afterwards.
#[test]
fn concurrent_sessions_on_one_store_are_bit_identical_to_sequential_runs() {
    let dir = scratch_dir("concurrent");
    let path = dir.join("instance.tpg");
    stream_rgg2d_to_tpg(12_000, 14, 21, &path, &dir, 4, &Default::default()).unwrap();

    let base = PartitionerConfig::terapart(8)
        .with_threads(1)
        .with_page_budget(128 * 1024);
    let engine_cfg = EngineConfig::from_partitioner(&base);

    // Registry dedup: repeated opens of the same container return one shared handle.
    let engine = PartitionEngine::with_config(engine_cfg.clone());
    let store = engine.open_store(&path).unwrap();
    let reopened = engine.open_store(&path).unwrap();
    assert!(
        Arc::ptr_eq(&store, &reopened),
        "the registry opened the same container twice"
    );
    assert_eq!(engine.registry().open_count(), 1);

    // Distinct seeds and block counts per session.
    let requests: Vec<PartitionRequest> = (0..8)
        .map(|i| {
            let mut request = PartitionRequest::from_config(&base).with_seed(100 + i as u64);
            request.k = if i % 2 == 0 { 8 } else { 4 };
            request
        })
        .collect();

    // Sequential references, each on its own fresh engine.
    let references: Vec<_> = requests
        .iter()
        .map(|request| {
            PartitionEngine::with_config(engine_cfg.clone())
                .partition_path(&path, request)
                .expect("sequential reference run failed")
        })
        .collect();

    let results: Vec<_> = std::thread::scope(|scope| {
        let handles: Vec<_> = requests
            .iter()
            .map(|request| {
                let engine = &engine;
                let store = &*store;
                scope.spawn(move || {
                    engine
                        .partition_store(store, request)
                        .expect("concurrent session failed")
                })
            })
            .collect();
        handles
            .into_iter()
            .map(|h| h.join().expect("concurrent session panicked"))
            .collect()
    });

    for (i, (run, reference)) in results.iter().zip(&references).enumerate() {
        assert_eq!(run.edge_cut, reference.edge_cut, "session {i} cut diverged");
        assert_eq!(
            run.partition.assignment(),
            reference.partition.assignment(),
            "session {i} not bit-identical to its sequential reference"
        );
    }

    // Arenas scale with simultaneity, never exceed it, and all return to the pool.
    let pool = engine.scratch_pool();
    assert!(pool.high_water() >= 1 && pool.high_water() <= 8);
    assert_eq!(pool.parked_arenas(), pool.high_water());

    drop((store, reopened));
    engine.registry().prune();
    assert_eq!(engine.registry().open_count(), 0);
    std::fs::remove_dir_all(dir).ok();
}

/// Two stores on one engine: store F sits on a backend with a permanent read outage,
/// store G is healthy. The session on F must fail with a structured error while the
/// co-tenant sessions on G (running simultaneously) complete bit-identically to a
/// solo reference — and the poison dies with F's failed session: the shared store,
/// fresh sessions on it, and the registry all stay healthy.
#[test]
fn a_failed_session_leaves_co_tenants_store_and_registry_healthy() {
    let dir = scratch_dir("fault_isolation");
    let faulty_path = dir.join("faulty.tpg");
    let healthy_path = dir.join("healthy.tpg");
    stream_rgg2d_to_tpg(8_000, 12, 31, &faulty_path, &dir, 4, &Default::default()).unwrap();
    stream_rgg2d_to_tpg(8_000, 12, 32, &healthy_path, &dir, 4, &Default::default()).unwrap();

    let mut base = PartitionerConfig::terapart(4)
        .with_threads(1)
        .with_retry(RetryPolicy::disabled());
    base.ondisk.page_size = 4 * 1024;
    base.ondisk.budget_bytes = 64 * 1024;
    let engine_cfg = EngineConfig::from_partitioner(&base);
    let engine = PartitionEngine::with_config(engine_cfg.clone());

    // Store F: every read from operation 64 on fails, modelling a device outage that
    // strikes mid-pipeline (the open itself stays below the threshold).
    let backend = FaultyBackend::new(
        FileBackend::open(&faulty_path).unwrap(),
        FaultPlan {
            fail_reads_from: Some(64),
            ..FaultPlan::default()
        },
    );
    let stats = backend.stats();
    let paged = PagedGraph::open_with_backend(Box::new(backend), &base.ondisk)
        .expect("the outage must not strike during the open");
    let faulty_store =
        engine
            .registry()
            .insert(&faulty_path, &base.ondisk, StoreHandle::Paged(paged));
    let healthy_store = engine.open_store(&healthy_path).unwrap();
    assert_eq!(engine.registry().open_count(), 2);

    let request = PartitionRequest::from_config(&base);
    let reference = PartitionEngine::with_config(engine_cfg.clone())
        .partition_path(&healthy_path, &request)
        .expect("healthy reference run failed");

    std::thread::scope(|scope| {
        let faulty = scope.spawn(|| engine.partition_store(&faulty_store, &request));
        let co_tenants: Vec<_> = (0..3)
            .map(|_| {
                scope.spawn(|| {
                    engine
                        .partition_store(&healthy_store, &request)
                        .expect("healthy co-tenant session failed")
                })
            })
            .collect();
        let err = faulty
            .join()
            .unwrap()
            .expect_err("the outage store must fail its session");
        assert!(
            err.phase.is_some(),
            "outage error lost its pipeline phase: {err}"
        );
        for handle in co_tenants {
            let run = handle.join().expect("co-tenant session panicked");
            assert_eq!(
                run.partition.assignment(),
                reference.partition.assignment(),
                "a co-tenant diverged while another session was poisoned"
            );
        }
    });
    assert!(
        stats
            .outage_reads
            .load(std::sync::atomic::Ordering::Relaxed)
            > 0,
        "the outage never fired"
    );

    // The poison died with the failed session: the shared store itself is clean and
    // a fresh session on it starts healthy.
    let paged = faulty_store.as_paged().expect("store F is paged");
    assert!(paged.take_fatal_error().is_none());
    let fresh = faulty_store.session();
    assert!(!fresh.is_poisoned());
    assert!(fresh.take_fatal_error().is_none());
    drop(fresh);

    // The registry is untouched by the failure.
    assert_eq!(engine.registry().open_count(), 2);
    assert!(Arc::ptr_eq(
        &engine.open_store(&healthy_path).unwrap(),
        &healthy_store
    ));
    drop((faulty_store, healthy_store));
    engine.registry().prune();
    assert_eq!(engine.registry().open_count(), 0);
    std::fs::remove_dir_all(dir).ok();
}
