//! Fault-injection harness: the full on-disk partitioning pipeline driven over a
//! [`FaultyBackend`] under seeded fault schedules. The contract under test is the
//! tentpole guarantee of the fault-tolerant storage layer: every run either
//! completes with a partition bit-identical to the fault-free reference cut, or
//! returns a structured [`PartitionError`] — it never panics, never deadlocks,
//! never silently degrades the cut, and never leaks temporary files.

use graph::store::{
    read_tpg_meta, stream_rgg2d_to_tpg, FaultPlan, FaultyBackend, FileBackend, TpgWriter,
};
use graph::traits::Graph;
use graph::{gen, NodeId, PagedGraph};
use memtrack::PhaseTracker;
use std::time::Duration;
use terapart::{partition_ondisk, partition_paged_with_tracker, PartitionerConfig, RetryPolicy};

fn scratch_dir(name: &str) -> std::path::PathBuf {
    let dir = std::env::temp_dir().join(format!(
        "terapart_faults_it_{}_{}",
        std::process::id(),
        name
    ));
    std::fs::create_dir_all(&dir).unwrap();
    dir
}

/// Streams a fixed geometric instance into `dir` and returns its path.
fn make_instance(dir: &std::path::Path, n: usize, degree: usize) -> std::path::PathBuf {
    let path = dir.join("instance.tpg");
    stream_rgg2d_to_tpg(n, degree, 77, &path, dir, 4, &Default::default()).unwrap();
    path
}

/// After a fault campaign the scratch directory must hold exactly the instance
/// container — no writer temp files, no spill buckets, nothing half-published.
fn assert_no_leaked_files(dir: &std::path::Path, expected: &[&str]) {
    let mut names: Vec<String> = std::fs::read_dir(dir)
        .unwrap()
        .map(|e| e.unwrap().file_name().to_string_lossy().into_owned())
        .collect();
    names.sort();
    let mut expected: Vec<String> = expected.iter().map(|s| s.to_string()).collect();
    expected.sort();
    assert_eq!(names, expected, "fault campaign leaked files in {:?}", dir);
}

/// Opens the instance through a fault-injecting backend and partitions it.
fn partition_under_faults(
    path: &std::path::Path,
    config: &PartitionerConfig,
    plan: FaultPlan,
) -> (
    Result<terapart::PartitionResult, terapart::PartitionError>,
    std::sync::Arc<graph::store::FaultStats>,
) {
    let backend = FaultyBackend::new(FileBackend::open(path).unwrap(), plan);
    let stats = backend.stats();
    let result = match PagedGraph::open_with_backend(Box::new(backend), &config.ondisk) {
        Ok(paged) => {
            let tracker = PhaseTracker::new();
            let result = partition_paged_with_tracker(&paged, config, &tracker);
            // The poison protocol is drain-once: after the driver consumed the
            // fatal error (or there was none), nothing is left behind.
            assert!(paged.take_fatal_error().is_none());
            result
        }
        Err(e) => Err(terapart::PartitionError {
            phase: Some("open_store@0".into()),
            context: "opening the .tpg container".into(),
            source: e,
        }),
    };
    (result, stats)
}

/// Transient schedules (periodic EIO, short reads, bit flips) across several
/// seeds: each run must finish bit-identical to the fault-free cut or fail with
/// a structured error. At least one schedule must complete, faults must actually
/// fire, and completed runs must show the retry/checksum counters ticking.
#[test]
fn transient_fault_schedules_complete_identically_or_fail_structured() {
    let dir = scratch_dir("transient");
    let path = make_instance(&dir, 12_000, 16);
    // The transient plan faults roughly a third of all reads, so surviving a
    // schedule needs a deeper retry budget than the default two attempts, and a
    // page budget that covers the instance — a starved cache re-reads pages
    // tens of thousands of times, which makes eventually exhausting the retries
    // a near-certainty under this fault density. Short backoff keeps it fast.
    let mut config = PartitionerConfig::terapart(4)
        .with_threads(1)
        .with_seed(9)
        .with_retry(RetryPolicy {
            max_retries: 8,
            base_delay: Duration::from_micros(50),
            max_delay: Duration::from_micros(500),
        });
    config.ondisk.page_size = 16 * 1024;
    config.ondisk.budget_bytes = 512 * 1024;
    let reference = partition_ondisk(&path, &config).unwrap();

    let mut total_faults = 0u64;
    let mut completed = 0u32;
    let mut recovered_reads = 0u64;
    for seed in 1..=6u64 {
        let (result, stats) = partition_under_faults(&path, &config, FaultPlan::transient(seed));
        match result {
            Ok(run) => {
                assert_eq!(run.edge_cut, reference.edge_cut, "seed {}", seed);
                assert_eq!(
                    run.partition.assignment(),
                    reference.partition.assignment(),
                    "faulty run (seed {}) diverged from the fault-free cut",
                    seed
                );
                let cache = run.cache_stats.expect("on-disk runs expose cache stats");
                recovered_reads += cache.retried_reads;
                completed += 1;
            }
            Err(err) => {
                // Structured failure: a display chain with context and a source.
                let msg = err.to_string();
                assert!(!err.context.is_empty(), "empty context: {}", msg);
                assert!(std::error::Error::source(&err).is_some(), "{}", msg);
            }
        }
        total_faults += stats.total();
    }
    assert!(total_faults > 0, "no faults were injected at all");
    assert!(
        completed >= 1,
        "no transient schedule completed; retries never recovered"
    );
    assert!(
        recovered_reads > 0,
        "completed runs never exercised the retry path"
    );
    assert_no_leaked_files(&dir, &["instance.tpg"]);
    std::fs::remove_dir_all(dir).ok();
}

/// A permanent outage beginning mid-pipeline: retries are exhausted, the paged
/// graph poisons itself, and the driver surfaces one structured error naming the
/// pipeline phase the outage interrupted — instead of panicking inside
/// clustering or refinement.
#[test]
fn hard_outage_mid_pipeline_returns_a_structured_error() {
    let dir = scratch_dir("outage");
    let path = make_instance(&dir, 12_000, 16);
    let mut config = PartitionerConfig::terapart(4).with_threads(1).with_seed(9);
    config.ondisk.page_size = 4 * 1024;
    config.ondisk.budget_bytes = 64 * 1024;

    let plan = FaultPlan {
        fail_reads_from: Some(64),
        ..FaultPlan::default()
    };
    let (result, stats) = partition_under_faults(&path, &config, plan);
    let err = result.expect_err("a permanent outage must fail the run");
    assert!(
        stats
            .outage_reads
            .load(std::sync::atomic::Ordering::Relaxed)
            > 0,
        "the outage never fired"
    );
    assert!(
        err.phase.is_some(),
        "outage error lost its pipeline phase: {}",
        err
    );
    let msg = err.to_string();
    assert!(msg.contains("failed in phase"), "{}", msg);
    assert_no_leaked_files(&dir, &["instance.tpg"]);
    std::fs::remove_dir_all(dir).ok();
}

/// The mmap backend front-loads every read (header, offset index, node weights and
/// the full checksummed data section) into the open, so fault schedules hit it
/// there: transient faults heal through the same per-section retry policy the
/// paged open uses — and the opened graph decodes identically to a fault-free
/// open — while a permanent outage fails the open with a structured [`IoError`],
/// never a panic. A fault-injecting backend exposes no mappable file, so the
/// verification flows through `read_at` on the heap-fallback path by design.
#[test]
fn mmap_open_path_heals_transients_and_fails_outages_structurally() {
    let dir = scratch_dir("mmap_faults");
    let path = make_instance(&dir, 12_000, 16);
    let clean = graph::MmapGraph::open(&path).unwrap();
    let options = graph::PagedGraphOptions {
        retry: RetryPolicy {
            max_retries: 8,
            base_delay: Duration::from_micros(50),
            max_delay: Duration::from_micros(500),
        },
        ..graph::PagedGraphOptions::default()
    };

    let mut total_faults = 0u64;
    let mut healed = 0u32;
    for seed in 1..=6u64 {
        let backend = FaultyBackend::new(
            FileBackend::open(&path).unwrap(),
            FaultPlan::transient(seed),
        );
        let stats = backend.stats();
        match graph::MmapGraph::open_with_backend(Box::new(backend), &options) {
            Ok(g) => {
                assert!(
                    !g.is_mmap(),
                    "a fault-injecting backend must route onto the heap fallback"
                );
                for u in (0..g.n() as NodeId).step_by(97) {
                    assert_eq!(g.neighbors_vec(u), clean.neighbors_vec(u), "seed {}", seed);
                }
                healed += 1;
            }
            Err(err) => {
                // Structured failure with a readable display chain.
                assert!(!err.to_string().is_empty());
            }
        }
        total_faults += stats.total();
    }
    assert!(total_faults > 0, "no faults were injected at all");
    assert!(
        healed >= 1,
        "no transient schedule healed through the open-time retries"
    );

    // A permanent outage a few reads in: retries exhaust, the open fails cleanly.
    let backend = FaultyBackend::new(
        FileBackend::open(&path).unwrap(),
        FaultPlan {
            fail_reads_from: Some(2),
            ..FaultPlan::default()
        },
    );
    let stats = backend.stats();
    let err = graph::MmapGraph::open_with_backend(Box::new(backend), &options)
        .expect_err("a permanent outage must fail the mmap open");
    assert!(
        stats
            .outage_reads
            .load(std::sync::atomic::Ordering::Relaxed)
            > 0,
        "the outage never fired"
    );
    assert!(!err.to_string().is_empty());
    std::fs::remove_dir_all(dir).ok();
}

/// Readahead faults are advisory: a plan that fails every multi-page prefetch
/// run (reads longer than the fault threshold) degrades the worker, while the
/// foreground's single-page faults keep succeeding — the run completes
/// bit-identical to the fault-free reference.
#[test]
fn prefetch_worker_failures_degrade_without_corrupting_the_run() {
    let dir = scratch_dir("prefetch_degrade");
    let path = make_instance(&dir, 12_000, 32);
    let meta = read_tpg_meta(&path).unwrap();

    let mut config = PartitionerConfig::terapart(8)
        .with_threads(1)
        .with_seed(7)
        .with_prefetch(true);
    // 64 KiB pages match the checksum block length, so every foreground fault
    // reads exactly one page and stays below the threshold; the open-time index
    // reads (8·(n+1) bytes) fit under it too. Only coalesced multi-page
    // readahead runs exceed it and draw the injected EIO.
    config.ondisk.page_size = 64 * 1024;
    config.ondisk.budget_bytes = 1024 * 1024;
    let threshold = 112 * 1024;
    assert!(8 * (meta.n + 1) <= threshold);
    assert!(
        meta.data_len > 3 * config.ondisk.page_size as u64,
        "instance too small to form multi-page readahead runs"
    );

    let reference = partition_ondisk(&path, &config).unwrap();
    let plan = FaultPlan {
        seed: 3,
        eio_period: 1, // every read beyond the size threshold fails
        only_reads_longer_than: Some(threshold),
        ..FaultPlan::default()
    };
    let (result, stats) = partition_under_faults(&path, &config, plan);
    let run = result.expect("readahead faults must never fail the run");
    assert!(
        stats.eio.load(std::sync::atomic::Ordering::Relaxed) > 0,
        "no prefetch run ever exceeded the fault threshold; the schedule was inert"
    );
    assert_eq!(run.edge_cut, reference.edge_cut);
    assert_eq!(
        run.partition.assignment(),
        reference.partition.assignment(),
        "degraded-prefetch run diverged from the fault-free cut"
    );
    assert_no_leaked_files(&dir, &["instance.tpg"]);
    std::fs::remove_dir_all(dir).ok();
}

/// Write and fsync faults during container creation surface as errors from
/// `push_neighborhood`/`finish` — never a panic, never a torn container
/// published at the destination.
#[test]
fn writer_faults_fail_cleanly() {
    let dir = scratch_dir("writer");
    let g = gen::weblike(9, 8, 5);

    // Every write fails: creation, some push, or the finish must error out —
    // the writer buffers appends, so the failure surfaces at whichever call
    // actually flushes.
    let out = dir.join("writes.tpg");
    let backend = FaultyBackend::new(
        FileBackend::create(&out).unwrap(),
        FaultPlan {
            seed: 1,
            write_fail_period: 1,
            ..FaultPlan::default()
        },
    );
    let stats = backend.stats();
    let failed = (|| -> Result<_, graph::io::IoError> {
        let mut writer = TpgWriter::create_with_backend(
            Box::new(backend),
            g.n(),
            g.is_edge_weighted(),
            &Default::default(),
        )?;
        for u in 0..g.n() as NodeId {
            let mut nbrs = g.neighbors_vec(u);
            nbrs.sort_unstable_by_key(|&(v, _)| v);
            writer.push_neighborhood(u, &nbrs, g.node_weight(u))?;
        }
        writer.finish()
    })()
    .expect_err("every write fails; the container cannot be committed");
    assert!(!failed.to_string().is_empty());
    assert!(
        stats
            .write_failures
            .load(std::sync::atomic::Ordering::Relaxed)
            > 0
    );

    // Fsync failure at commit time: data writes succeed, finish still errors.
    let out2 = dir.join("sync.tpg");
    let backend = FaultyBackend::new(
        FileBackend::create(&out2).unwrap(),
        FaultPlan {
            seed: 2,
            sync_fail_period: 1,
            ..FaultPlan::default()
        },
    );
    let stats = backend.stats();
    let mut writer = TpgWriter::create_with_backend(
        Box::new(backend),
        g.n(),
        g.is_edge_weighted(),
        &Default::default(),
    )
    .unwrap();
    for u in 0..g.n() as NodeId {
        let mut nbrs = g.neighbors_vec(u);
        nbrs.sort_unstable_by_key(|&(v, _)| v);
        writer
            .push_neighborhood(u, &nbrs, g.node_weight(u))
            .unwrap();
    }
    writer
        .finish()
        .expect_err("a failing fsync must fail the commit");
    assert!(
        stats
            .sync_failures
            .load(std::sync::atomic::Ordering::Relaxed)
            > 0
    );

    std::fs::remove_dir_all(dir).ok();
}
