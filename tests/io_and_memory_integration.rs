//! Integration tests of graph I/O, streaming compression and the memory accounting
//! working together across crates.
use graph::traits::Graph;
use graph::{gen, io, CompressionConfig};
use terapart::{partition, PartitionerConfig};

/// Write a graph in METIS format, stream-compress it back in, and partition the result.
#[test]
fn metis_roundtrip_then_partition() {
    let graph = gen::rhg_like(1_500, 10, 3.0, 8);
    let mut path = std::env::temp_dir();
    path.push(format!("terapart_integration_{}.graph", std::process::id()));
    io::write_metis(&graph, &path).unwrap();
    let compressed = io::read_metis_compressed(&path, &CompressionConfig::default()).unwrap();
    assert_eq!(compressed.n(), graph.n());
    assert_eq!(compressed.m(), graph.m());
    let result = partition(&compressed, &PartitionerConfig::terapart(4).with_threads(2));
    assert!(result.partition.is_balanced());
    assert!(result.edge_cut > 0);
    std::fs::remove_file(path).ok();
}

/// The phase tracker attributes memory to every pipeline stage and its overall peak
/// bounds each individual phase peak.
#[test]
fn phase_tracking_covers_the_whole_pipeline() {
    let graph = gen::grid2d(60, 60);
    let tracker = memtrack::PhaseTracker::new();
    let config = PartitionerConfig::terapart(8).with_threads(2);
    let _ = terapart::partition_csr_with_tracker(&graph, &config, &tracker);
    let reports = tracker.reports();
    assert!(reports.len() >= 4);
    let overall = tracker.overall_peak();
    for report in &reports {
        assert!(report.peak_bytes <= overall);
        assert!(report.peak_bytes >= report.bytes_at_entry);
    }
}

/// ReservedVec's commit accounting feeds the same global counter the partitioner uses.
#[test]
fn reserve_commit_accounting_is_visible_globally() {
    let before = memtrack::global().current();
    let mut reserved: memtrack::ReservedVec<u64> = memtrack::ReservedVec::with_reservation(1 << 20);
    for i in 0..10_000u64 {
        reserved.push(i);
    }
    assert!(memtrack::global().current() >= before + 10_000 * 8 / 4096 * 4096);
    assert!(reserved.committed_bytes() < reserved.reserved_bytes());
    drop(reserved);
    assert!(memtrack::global().current() <= before + 4096);
}
