//! Cross-crate observability tests: recording spans, counters and traces through the
//! public API must never perturb the partitioning result.
//!
//! Two determinism regimes are covered (see `terapart::partitioner` docs): the full
//! pipeline is bitwise reproducible single-threaded, so the noop-vs-recording check
//! runs the complete default configuration at one thread. Parallel label propagation
//! applies moves asynchronously and is only reproducible sequentially, so the
//! multi-thread checks (1/2/4/8 threads) use an LP-free configuration — no clustering
//! rounds, no LP refinement rounds, k-way FM only — whose remaining stages (initial
//! partitioning, k-way FM, rebalancing) are deterministic at any thread count.

use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::Arc;

use graph::gen;
use terapart::{partition_csr, Counter, PartitionerConfig, ProgressEvent, RefinementAlgorithm};

/// Recording a run report, exporting a Chrome trace and firing progress callbacks must
/// all leave the fixed-seed single-threaded result bit-identical to the noop run.
#[test]
fn observability_does_not_perturb_the_single_threaded_pipeline() {
    let graph = gen::rgg2d(4_000, 12, 33);
    let base = PartitionerConfig::terapart(8).with_threads(1).with_seed(9);

    let noop = partition_csr(&graph, &base);
    assert!(
        noop.run_report.is_none(),
        "the noop configuration must not allocate a run report"
    );

    let recorded = partition_csr(&graph, &base.clone().with_run_report(true));
    let report = recorded
        .run_report
        .as_ref()
        .expect("recording config attaches a run report");
    assert!(report.total_ns > 0);
    assert!(
        report.span_coverage >= 0.9,
        "span coverage {:.3} too low",
        report.span_coverage
    );
    assert!(report.counter(Counter::LpClusterRounds) > 0);

    let dir = std::env::temp_dir().join(format!("terapart_obs_test_{}", std::process::id()));
    std::fs::create_dir_all(&dir).expect("failed to create the trace dir");
    let trace_path = dir.join("trace.json");
    let progress_events = Arc::new(AtomicUsize::new(0));
    let progress_counter = progress_events.clone();
    let traced = partition_csr(
        &graph,
        &base
            .clone()
            .with_trace_path(&trace_path)
            .with_progress(move |_event: &ProgressEvent| {
                progress_counter.fetch_add(1, Ordering::Relaxed);
            }),
    );
    let trace = std::fs::read_to_string(&trace_path).expect("trace file missing");
    std::fs::remove_dir_all(&dir).ok();
    assert!(
        trace.trim_start().starts_with('['),
        "trace is not a JSON array"
    );
    assert!(
        trace.trim_end().ends_with(']'),
        "trace array is unterminated"
    );
    assert!(trace.contains("\"ph\": \"X\""), "trace contains no events");
    assert!(
        progress_events.load(Ordering::Relaxed) >= 2,
        "progress hook never fired"
    );

    // Bitwise identity across all three observability modes.
    assert_eq!(noop.edge_cut, recorded.edge_cut);
    assert_eq!(noop.edge_cut, traced.edge_cut);
    assert_eq!(
        noop.partition.assignment(),
        recorded.partition.assignment(),
        "recording perturbed the fixed-seed result"
    );
    assert_eq!(
        noop.partition.assignment(),
        traced.partition.assignment(),
        "tracing perturbed the fixed-seed result"
    );
}

/// An LP-free configuration: every remaining stage (initial partitioning, k-way FM,
/// rebalancing) is deterministic at any thread count, so noop and recording runs can
/// be compared bitwise even in parallel.
fn lp_free_config(k: usize) -> PartitionerConfig {
    let mut config = PartitionerConfig::terapart(k).with_seed(17);
    config.coarsening.lp_rounds = 0;
    config.coarsening.two_hop_clustering = false;
    config.refinement.lp_rounds = 0;
    config.refinement.algorithm = RefinementAlgorithm::KWayFmWithLabelPropagation;
    config
}

/// With observability on, the LP-free pipeline stays bit-identical to the noop run at
/// every thread count.
#[test]
fn recording_is_bitwise_deterministic_across_thread_counts() {
    let graph = gen::erdos_renyi(2_000, 9_000, 41);
    let reference = partition_csr(&graph, &lp_free_config(4).with_threads(1));
    for threads in [1usize, 2, 4, 8] {
        let config = lp_free_config(4).with_threads(threads);
        let noop = partition_csr(&graph, &config);
        let recorded = partition_csr(&graph, &config.clone().with_run_report(true));
        assert_eq!(
            noop.edge_cut, recorded.edge_cut,
            "cut diverged at {threads} threads"
        );
        assert_eq!(
            noop.partition.assignment(),
            recorded.partition.assignment(),
            "recording perturbed the result at {threads} threads"
        );
        // The LP-free stages are also deterministic *across* thread counts; pin that
        // so this test keeps meaning something if the stages gain parallel phases.
        assert_eq!(
            reference.partition.assignment(),
            recorded.partition.assignment(),
            "LP-free pipeline diverged between 1 and {threads} threads"
        );
        let report = recorded.run_report.expect("recording attaches a report");
        assert_eq!(report.counter(Counter::LpClusterRounds), 0);
        assert_eq!(report.counter(Counter::CoarseningLevels), 0);
        assert!(report.counter(Counter::FmPasses) > 0);
    }
}
