//! Integration tests of the external-memory graph store: the acceptance criteria of the
//! on-disk subsystem exercised through the public APIs of graph, terapart and memtrack.

use graph::store::{
    read_tpg_compressed, read_tpg_meta, stream_rgg2d_to_tpg, write_tpg_from_graph_plain,
    OnDiskBackend,
};
use graph::traits::Graph;
use graph::{MmapGraph, PagedGraph, PagedGraphOptions};
use terapart::{partition, partition_ondisk, PartitionerConfig};

fn scratch_dir(name: &str) -> std::path::PathBuf {
    let dir = std::env::temp_dir().join(format!(
        "terapart_ondisk_it_{}_{}",
        std::process::id(),
        name
    ));
    std::fs::create_dir_all(&dir).unwrap();
    dir
}

/// The tentpole acceptance test: a generated instance whose uncompressed CSR exceeds
/// the configured page budget partitions on disk with (a) peak accounted memory below
/// the CSR byte size and (b) a partition bit-identical (fixed seed, single thread) to
/// the in-memory `CompressedGraph` path.
#[test]
fn ondisk_run_is_bit_identical_and_stays_below_csr_memory() {
    let dir = scratch_dir("acceptance");
    let path = dir.join("instance.tpg");
    // Streamed geometric instance: never materialised during generation either.
    stream_rgg2d_to_tpg(30_000, 18, 77, &path, &dir, 8, &Default::default()).unwrap();
    let meta = read_tpg_meta(&path).unwrap();
    let csr_bytes = meta.csr_size_in_bytes();

    let page_budget = 128 * 1024;
    assert!(
        csr_bytes > 8 * page_budget,
        "instance CSR ({} B) must far exceed the page budget ({} B)",
        csr_bytes,
        page_budget
    );

    let config = PartitionerConfig::terapart(8)
        .with_threads(1)
        .with_seed(5)
        .with_page_budget(page_budget);

    // In-memory reference: the compressed graph loaded from the very same container.
    let reference = partition(&read_tpg_compressed(&path).unwrap(), &config);

    memtrack::global().reset_peak();
    let ondisk = partition_ondisk(&path, &config).unwrap();

    assert_eq!(ondisk.edge_cut, reference.edge_cut);
    assert_eq!(
        ondisk.partition.assignment(),
        reference.partition.assignment(),
        "on-disk partition must be bit-identical to the in-memory compressed path"
    );
    assert!(ondisk.partition.is_balanced());
    assert!(
        ondisk.peak_memory_bytes < csr_bytes,
        "peak accounted memory {} B not below the uncompressed CSR size {} B",
        ondisk.peak_memory_bytes,
        csr_bytes
    );
    std::fs::remove_dir_all(dir).ok();
}

/// Tiny-page-budget stress: a budget far below the container size forces continuous
/// eviction, yet the fixed-seed result stays bit-identical to the in-memory path.
#[test]
fn starved_page_cache_still_partitions_identically() {
    let dir = scratch_dir("starved");
    let path = dir.join("instance.tpg");
    stream_rgg2d_to_tpg(12_000, 16, 13, &path, &dir, 4, &Default::default()).unwrap();
    let meta = read_tpg_meta(&path).unwrap();

    // A cache of a few 4 KiB pages against a data section dozens of times larger.
    let budget = 16 * 1024;
    assert!(meta.data_len as usize > 8 * budget);
    let mut config = PartitionerConfig::terapart(4).with_threads(1).with_seed(9);
    config.ondisk.page_size = 4 * 1024;
    config.ondisk.budget_bytes = budget;

    let reference = partition(&read_tpg_compressed(&path).unwrap(), &config);
    let starved = partition_ondisk(&path, &config).unwrap();
    assert_eq!(starved.edge_cut, reference.edge_cut);
    assert_eq!(
        starved.partition.assignment(),
        reference.partition.assignment()
    );

    // Confirm the budget actually starved the cache (evictions happened) by replaying
    // the access pattern's first sweep on a directly opened PagedGraph.
    let paged = PagedGraph::open_with_options(
        &path,
        &PagedGraphOptions {
            page_size: 4 * 1024,
            budget_bytes: budget,
            shards: 8,
            ..PagedGraphOptions::default()
        },
    )
    .unwrap();
    for u in 0..paged.n() as graph::NodeId {
        paged.for_each_neighbor(u, &mut |_, _| {});
    }
    let stats = paged.cache_stats();
    assert!(
        stats.evictions > 0,
        "budget {} did not force eviction: {:?}",
        budget,
        stats
    );
    std::fs::remove_dir_all(dir).ok();
}

/// Prefetch is purely an optimisation: fixed-seed on-disk runs with and without the
/// readahead worker produce bit-identical partitions, and the run exposes settled
/// cache counters either way.
#[test]
fn prefetch_on_and_off_runs_are_bit_identical() {
    let dir = scratch_dir("prefetch_identity");
    let path = dir.join("instance.tpg");
    stream_rgg2d_to_tpg(15_000, 14, 33, &path, &dir, 4, &Default::default()).unwrap();

    let base = PartitionerConfig::terapart(8)
        .with_threads(1)
        .with_seed(7)
        .with_page_budget(96 * 1024);
    let off = partition_ondisk(&path, &base.clone().with_prefetch(false)).unwrap();
    let on = partition_ondisk(&path, &base.with_prefetch(true)).unwrap();

    assert_eq!(on.edge_cut, off.edge_cut);
    assert_eq!(
        on.partition.assignment(),
        off.partition.assignment(),
        "prefetch changed the fixed-seed partition"
    );
    let off_stats = off.cache_stats.expect("on-disk runs expose cache stats");
    let on_stats = on.cache_stats.expect("on-disk runs expose cache stats");
    assert_eq!(off_stats.prefetched_pages, 0);
    assert!(
        on_stats.prefetched_pages > 0,
        "the readahead worker never ran: {:?}",
        on_stats
    );
    std::fs::remove_dir_all(dir).ok();
}

/// The mmap fast path is a pure representation change: fixed-seed runs through the
/// `Mmap` backend produce partitions bit-identical to the paged backend and the
/// in-memory compressed path — on an Elias-Fano container (the writer default) and on
/// a plain-offset one (the `with_plain_offsets` opt-out).
#[test]
fn mmap_backend_runs_are_bit_identical_across_backends_and_encodings() {
    let dir = scratch_dir("mmap_identity");
    let path = dir.join("instance.tpg");
    // Streamed containers use the default writer path, i.e. Elias-Fano offsets.
    stream_rgg2d_to_tpg(15_000, 14, 51, &path, &dir, 4, &Default::default()).unwrap();

    let base = PartitionerConfig::terapart(8)
        .with_threads(1)
        .with_seed(11)
        .with_page_budget(96 * 1024);
    let reference = partition(&read_tpg_compressed(&path).unwrap(), &base);
    let paged = partition_ondisk(&path, &base).unwrap();
    let mmap =
        partition_ondisk(&path, &base.clone().with_store_backend(OnDiskBackend::Mmap)).unwrap();
    assert_eq!(mmap.edge_cut, reference.edge_cut);
    assert_eq!(paged.edge_cut, reference.edge_cut);
    assert_eq!(
        mmap.partition.assignment(),
        reference.partition.assignment(),
        "mmap-backend partition must be bit-identical to the in-memory compressed path"
    );
    assert_eq!(
        paged.partition.assignment(),
        reference.partition.assignment()
    );

    // Re-encode the same graph with plain u64 offsets: the data section is identical,
    // so every backend must still reach the identical partition — and the default
    // (Elias-Fano) container must carry the smaller offset index.
    let plain_path = dir.join("instance_plain.tpg");
    write_tpg_from_graph_plain(
        &read_tpg_compressed(&path).unwrap(),
        &plain_path,
        &Default::default(),
    )
    .unwrap();
    let ef_meta = read_tpg_meta(&path).unwrap();
    let plain_meta = read_tpg_meta(&plain_path).unwrap();
    assert!(
        ef_meta.offsets_len_bytes() < plain_meta.offsets_len_bytes(),
        "Elias-Fano offsets ({} B) not smaller than plain ({} B)",
        ef_meta.offsets_len_bytes(),
        plain_meta.offsets_len_bytes()
    );
    let paged_plain = partition_ondisk(&plain_path, &base).unwrap();
    let mmap_plain =
        partition_ondisk(&plain_path, &base.with_store_backend(OnDiskBackend::Mmap)).unwrap();
    assert_eq!(
        paged_plain.partition.assignment(),
        reference.partition.assignment()
    );
    assert_eq!(
        mmap_plain.partition.assignment(),
        reference.partition.assignment()
    );
    std::fs::remove_dir_all(dir).ok();
}

/// The mmap view charges its full mapping to the memory accounting and releases it
/// on drop; the zero-copy decode agrees with the materialised view.
#[test]
fn mmap_view_accounts_its_mapping_and_agrees_with_materialized() {
    let dir = scratch_dir("mmap_views");
    let path = dir.join("instance.tpg");
    let g = graph::gen::weblike(11, 10, 3);
    graph::store::write_tpg_from_graph(&g, &path, &Default::default()).unwrap();
    let materialized = graph::store::read_tpg(&path).unwrap();
    let before = memtrack::global().current();
    {
        let mmap = MmapGraph::open(&path).unwrap();
        assert!(
            memtrack::global().current() >= before + mmap.accounted_bytes(),
            "mapping not charged to the global memory accounting"
        );
        assert_eq!(mmap.n(), materialized.n());
        assert_eq!(mmap.m(), materialized.m());
        assert_eq!(mmap.total_edge_weight(), materialized.total_edge_weight());
        assert_eq!(mmap.max_degree(), materialized.max_degree());
        for u in (0..mmap.n() as graph::NodeId).step_by(37) {
            let mut a = mmap.neighbors_vec(u);
            a.sort_unstable();
            assert_eq!(a, materialized.neighbors_vec(u));
        }
    }
    assert!(
        memtrack::global().current() <= before,
        "mapping charge not released on drop"
    );
    std::fs::remove_dir_all(dir).ok();
}

/// The paged view and the materialised view of the same container expose the same
/// graph to the partitioner-facing accessors.
#[test]
fn paged_and_materialized_views_agree() {
    let dir = scratch_dir("views");
    let path = dir.join("instance.tpg");
    let g = graph::gen::weblike(11, 10, 3);
    graph::store::write_tpg_from_graph(&g, &path, &Default::default()).unwrap();
    let paged =
        PagedGraph::open_with_options(&path, &PagedGraphOptions::with_budget(64 * 1024)).unwrap();
    let materialized = graph::store::read_tpg(&path).unwrap();
    assert_eq!(paged.n(), materialized.n());
    assert_eq!(paged.m(), materialized.m());
    assert_eq!(paged.total_edge_weight(), materialized.total_edge_weight());
    assert_eq!(paged.max_degree(), materialized.max_degree());
    assert_eq!(
        paged.total_capped_degree(8),
        materialized.total_capped_degree(8)
    );
    for u in (0..paged.n() as graph::NodeId).step_by(37) {
        let mut a = paged.neighbors_vec(u);
        a.sort_unstable();
        assert_eq!(a, materialized.neighbors_vec(u));
    }
    std::fs::remove_dir_all(dir).ok();
}
