//! Cross-crate integration tests: the full partitioning pipeline exercised through the
//! public APIs of the graph, terapart and memtrack crates together.
use graph::traits::Graph;
use graph::{gen, CompressedGraph, CompressionConfig};
use terapart::{partition, partition_csr, PartitionerConfig};

/// Every configuration preset produces a complete, balanced partition whose cut is far
/// below the expected cut of a random partition.
#[test]
fn configuration_ladder_end_to_end() {
    let graph = gen::rgg2d(3_000, 12, 21);
    let k = 8;
    let random_cut = graph.m() as f64 * (k as f64 - 1.0) / k as f64;
    for config in [
        PartitionerConfig::kaminpar(k),
        PartitionerConfig::kaminpar_two_phase_lp(k),
        PartitionerConfig::kaminpar_compressed(k),
        PartitionerConfig::terapart(k),
        PartitionerConfig::terapart_fm(k),
    ] {
        let result = partition_csr(&graph, &config.with_threads(2));
        assert!(result.partition.is_complete());
        assert!(
            result.partition.is_balanced(),
            "imbalance {}",
            result.imbalance
        );
        assert!(
            (result.edge_cut as f64) < 0.5 * random_cut,
            "cut {} not much better than random {}",
            result.edge_cut,
            random_cut
        );
    }
}

/// The headline memory claim, at laptop scale: the full TeraPart configuration never
/// uses more accounted memory than the KaMinPar baseline on a memory-relevant instance.
#[test]
fn terapart_peak_memory_is_not_worse_than_kaminpar() {
    let graph = gen::weblike(13, 12, 5);
    let k = 64;
    let kaminpar = partition_csr(&graph, &PartitionerConfig::kaminpar(k).with_threads(2));
    let terapart_run = partition_csr(&graph, &PartitionerConfig::terapart(k).with_threads(2));
    assert!(
        terapart_run.peak_memory_bytes <= kaminpar.peak_memory_bytes,
        "TeraPart peak {} exceeds KaMinPar peak {}",
        terapart_run.peak_memory_bytes,
        kaminpar.peak_memory_bytes
    );
    // Quality is preserved (the paper reports cuts within 0.03% on average; allow slack
    // at this scale).
    let ratio = terapart_run.edge_cut.max(1) as f64 / kaminpar.edge_cut.max(1) as f64;
    assert!(
        (0.8..1.25).contains(&ratio),
        "cut ratio {} too far from 1",
        ratio
    );
}

/// Partitioning the compressed representation gives the same quality class as CSR.
#[test]
fn compressed_representation_is_equivalent_for_partitioning() {
    let csr = gen::rgg2d(2_500, 14, 33);
    let compressed = CompressedGraph::from_csr(&csr, &CompressionConfig::default());
    let config = PartitionerConfig::kaminpar_two_phase_lp(8)
        .with_threads(2)
        .with_seed(11);
    let a = partition(&csr, &config);
    let b = partition(&compressed, &config);
    assert!(a.partition.is_balanced() && b.partition.is_balanced());
    let ratio = a.edge_cut.max(1) as f64 / b.edge_cut.max(1) as f64;
    assert!((0.75..1.35).contains(&ratio), "cut ratio {}", ratio);
}

/// Multilevel partitioning beats the single-level and streaming baselines on structured
/// graphs — the central claim of the paper's comparisons.
#[test]
fn multilevel_beats_single_level_and_streaming() {
    let graph = gen::rgg2d(2_500, 16, 44);
    let k = 8;
    let multilevel = partition(&graph, &PartitionerConfig::terapart(k).with_threads(2));
    let single = baselines::xtrapulp_partition(&graph, k, 0.03, 1);
    let streaming = baselines::heistream_partition(&graph, k, 0.03, 256, 1);
    assert!(multilevel.edge_cut < single.edge_cut);
    assert!(multilevel.edge_cut <= streaming.edge_cut);
}

/// The `HierarchyScratch` arena makes the per-level hot paths allocation-free: across a
/// deep hierarchy its footprint is no larger than what the single largest (first) level
/// requires on its own, because every later level reuses the same buffers.
#[test]
fn hierarchy_scratch_peak_is_bounded_by_largest_level() {
    use terapart::coarsening::{
        cluster_with_scratch, coarsen_with_scratch, contract_with_scratch, max_cluster_weight,
        two_hop_clustering,
    };
    use terapart::HierarchyScratch;

    let graph = gen::rgg2d(20_000, 10, 9);
    // Single thread so both runs compute the identical level-0 clustering.
    let config = PartitionerConfig::terapart(4).with_threads(1);
    let pool = rayon::ThreadPoolBuilder::new()
        .num_threads(1)
        .build()
        .unwrap();

    // Full multilevel coarsening through one arena.
    let tracker = memtrack::PhaseTracker::new();
    let mut full = HierarchyScratch::new();
    let hierarchy = pool.install(|| coarsen_with_scratch(&graph, &config, &tracker, &mut full));
    assert!(
        hierarchy.depth() >= 3,
        "need a deep hierarchy, got {}",
        hierarchy.depth()
    );
    let full_run_bytes = full.memory_bytes();
    assert!(full_run_bytes > 0);

    // Only the first (largest) level, with a fresh arena, mirroring coarsen's level 0.
    let coarsening = &config.coarsening;
    let limit = max_cluster_weight(
        graph.total_node_weight(),
        config.k,
        coarsening.contraction_limit,
        coarsening.max_cluster_weight_fraction,
    );
    let seed = config.seed ^ (1u64 << 32);
    let mut single = HierarchyScratch::new();
    pool.install(|| {
        let mut clustering = cluster_with_scratch(&graph, coarsening, limit, seed, &mut single);
        if coarsening.two_hop_clustering
            && clustering.num_clusters as f64 > coarsening.min_shrink_factor * graph.n() as f64
        {
            two_hop_clustering(&graph, &mut clustering, limit);
        }
        contract_with_scratch(
            &graph,
            &clustering,
            coarsening.contraction,
            coarsening.bump_threshold,
            &mut single,
        )
    });
    assert!(
        full_run_bytes <= single.memory_bytes(),
        "scratch grew beyond the largest level: {} > {} bytes across {} levels",
        full_run_bytes,
        single.memory_bytes(),
        hierarchy.depth()
    );
}

/// The distributed (simulated) partitioner agrees with the shared-memory one on quality
/// class and produces less per-PE memory with compressed shards.
#[test]
fn distributed_partitioner_matches_shared_memory_quality_class() {
    let graph = gen::rgg2d(2_000, 12, 55);
    let k = 8;
    let shared = partition(&graph, &PartitionerConfig::terapart(k).with_threads(2));
    let dist = xterapart::dist_partition(&graph, &xterapart::DistPartitionConfig::xterapart(k, 3));
    assert!(dist.balanced);
    assert!(
        (dist.edge_cut as f64) < 3.0 * shared.edge_cut.max(1) as f64,
        "distributed cut {} far worse than shared-memory {}",
        dist.edge_cut,
        shared.edge_cut
    );
}
